"""Unit tests for repro.baselines."""

import numpy as np
import pytest

from repro.baselines.bandpass_decoder import BandpassDecoder
from repro.baselines.camera import CameraConditions, CameraCounter
from repro.baselines.naive_counter import NaiveCounter
from repro.baselines.radar import RadarGun
from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.noise import thermal_noise_power_w
from repro.channel.propagation import LosChannel
from repro.constants import FFT_RESOLUTION_HZ
from repro.core.decoding import CoherentDecoder
from repro.errors import ConfigurationError
from tests.conftest import make_tag


class TestNaiveCounter:
    def test_counts_separated_tags(self):
        tags = [make_tag(c, position_m=(3.0 * i + 2, -8.0, 1.0), seed=i) for i, c in enumerate((200e3, 600e3, 1000e3))]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator(
            tags, array.positions_m, LosChannel(), noise_power_w=thermal_noise_power_w(4e6), rng=1
        )
        assert NaiveCounter().count(sim.query(0.0).antenna(0)) == 3

    def test_same_bin_pair_counted_once(self):
        """The failure Caraoke's §5 upgrade fixes."""
        tags = [make_tag(c, position_m=(3.0 * i + 2, -8.0, 1.0), seed=i) for i, c in enumerate((500_000.0, 500_700.0))]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator(
            tags, array.positions_m, LosChannel(), noise_power_w=thermal_noise_power_w(4e6), rng=2
        )
        assert NaiveCounter().count(sim.query(0.0).antenna(0)) == 1

    def test_count_bins_idealized(self):
        counter = NaiveCounter()
        cfos = np.array([10e3, 11e3, 500e3])  # first two share a bin
        assert counter.count_bins(cfos, FFT_RESOLUTION_HZ) == 2

    def test_count_bins_empty(self):
        assert NaiveCounter().count_bins(np.array([]), FFT_RESOLUTION_HZ) == 0


class TestCameraCounter:
    def test_daylight_error_is_small(self):
        camera = CameraCounter(CameraConditions(illumination="day", occlusion=0.05))
        assert camera.expected_error_fraction() < 0.08

    def test_adverse_conditions_reach_tens_of_percent(self):
        """[43]: errors up to ~26 % in bad illumination/wind."""
        camera = CameraCounter(
            CameraConditions(illumination="night", wind=0.8, occlusion=0.3, dirty_lens=0.5)
        )
        assert camera.expected_error_fraction() > 0.15

    def test_count_is_noisy_but_unbiased_scale(self):
        camera = CameraCounter(
            CameraConditions(illumination="day", occlusion=0.1), rng=np.random.default_rng(0)
        )
        counts = [camera.count(100) for _ in range(300)]
        assert 80 < np.mean(counts) < 100

    def test_zero_cars(self):
        camera = CameraCounter(rng=np.random.default_rng(1))
        assert camera.count(0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CameraConditions(illumination="fog")
        with pytest.raises(ConfigurationError):
            CameraConditions(wind=2.0)


class TestRadarGun:
    def test_single_car_always_correct(self):
        gun = RadarGun(rng=np.random.default_rng(0))
        assert gun.wrong_ticket_rate(cars_in_beam=1, trials=200) == 0.0

    def test_multi_car_confusion_in_paper_range(self):
        """§4 [6]: 10-30 % of radar tickets hit the wrong car."""
        gun = RadarGun(rng=np.random.default_rng(1))
        rate_2 = gun.wrong_ticket_rate(cars_in_beam=2, trials=3000)
        rate_7 = gun.wrong_ticket_rate(cars_in_beam=7, trials=3000)
        assert 0.07 <= rate_2 <= 0.14
        assert 0.15 <= rate_7 <= 0.35

    def test_confusion_saturates(self):
        gun = RadarGun()
        assert gun.confusion_probability(50) == pytest.approx(gun.max_confusion)

    def test_speed_measurement_accurate(self):
        gun = RadarGun(rng=np.random.default_rng(2))
        speeds = np.array([20.0])
        outcomes = [gun.enforce(speeds, 0).measured_speed_m_s for _ in range(300)]
        assert np.mean(outcomes) == pytest.approx(20.0, abs=0.1)
        assert np.std(outcomes) < 1.0

    def test_validation(self):
        gun = RadarGun()
        with pytest.raises(ConfigurationError):
            gun.enforce(np.array([]), 0)
        with pytest.raises(ConfigurationError):
            gun.confusion_probability(0)


class TestBandpassDecoder:
    @pytest.fixture
    def lone_tag_capture(self):
        tag = make_tag(500e3, position_m=(8.0, -6.0, 1.0), seed=3)
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator(
            [tag], array.positions_m, LosChannel(), noise_power_w=thermal_noise_power_w(4e6), rng=4
        )
        return sim.query(0.0).antenna(0), tag

    def test_narrow_filter_destroys_data(self, lone_tag_capture):
        """§8: the data is spread, not at the spike — a narrow filter
        yields garbage bits even with NO interferers."""
        capture, tag = lone_tag_capture
        decoder = BandpassDecoder(half_bandwidth_hz=25e3)
        ber = decoder.bit_error_rate(capture, 500e3, tag.packet.to_bits())
        assert ber > 0.2  # near-random

    def test_decode_fails(self, lone_tag_capture):
        capture, _ = lone_tag_capture
        assert BandpassDecoder().decode(capture, 500e3) is None

    def test_caraoke_decodes_where_bandpass_fails(self, lone_tag_capture):
        capture, tag = lone_tag_capture
        assert BandpassDecoder().decode(capture, 500e3) is None
        result = CoherentDecoder(4e6).decode([capture], 500e3)
        assert result.success and result.packet == tag.packet
