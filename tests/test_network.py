"""Unit tests for repro.core.network (multi-reader batch processing)."""

import numpy as np
import pytest

from repro.apps import CarFinder, ParkingBillingService
from repro.core.localization import LaneProjectionLocalizer
from repro.core.network import (
    IdentityCache,
    ReaderNetwork,
    ReaderStation,
    StationReport,
)
from repro.sim.scenario import corridor_scene

LANES = (-1.75, -5.25)


def build_corridor(car_positions, pole_xs=(0.0,), seed=11):
    """A corridor scene plus one ready-made station per pole."""
    scene = corridor_scene(
        pole_xs_m=list(pole_xs),
        lane_ys_m=list(LANES),
        cars=car_positions,
        rng=seed,
    )
    stations = []
    for index, x in enumerate(pole_xs):
        sim = scene.simulator(index, rng=100 + seed + index)
        stations.append(
            ReaderStation(
                name=f"pole-{index}",
                reader=scene.reader(index),
                query_fn=sim.query,
                localizer=LaneProjectionLocalizer(road=scene.road, lane_ys_m=LANES),
            )
        )
    return scene, stations


class TestIdentityCache:
    def test_miss_then_hit(self):
        cache = IdentityCache(tolerance_hz=1000.0)
        assert cache.lookup(500e3) is None
        cache.store(500e3, 42)
        assert cache.lookup(500e3 + 800.0) == 42
        assert cache.lookup(500e3 + 1500.0) is None

    def test_drift_is_tracked(self):
        """Refreshing the stored CFO follows a slowly drifting oscillator."""
        cache = IdentityCache(tolerance_hz=1000.0)
        cache.store(500e3, 7)
        cache.store(500e3 + 900.0, 7)  # sighting refreshed the fingerprint
        assert cache.lookup(500e3 + 1700.0) == 7
        assert len(cache) == 1

    def test_nearest_entry_wins(self):
        cache = IdentityCache(tolerance_hz=5000.0)
        cache.store(500e3, 1)
        cache.store(504e3, 2)
        assert cache.lookup(503.5e3) == 2

    def test_max_entries_evicts_least_recently_seen(self):
        cache = IdentityCache(tolerance_hz=1000.0, max_entries=2)
        cache.store(100e3, 1, now_s=10.0)
        cache.store(200e3, 2, now_s=20.0)
        cache.store(300e3, 3, now_s=30.0)
        assert len(cache) == 2
        assert cache.lookup(100e3) is None  # oldest went
        assert cache.lookup(200e3) == 2
        assert cache.lookup(300e3) == 3

    def test_refresh_protects_from_eviction(self):
        cache = IdentityCache(tolerance_hz=1000.0, max_entries=2)
        cache.store(100e3, 1, now_s=10.0)
        cache.store(200e3, 2, now_s=20.0)
        cache.store(100e3, 1, now_s=25.0)  # sighting refreshes last-seen
        cache.store(300e3, 3, now_s=30.0)
        assert cache.lookup(100e3) == 1
        assert cache.lookup(200e3) is None

    def test_aging_prunes_and_lookup_never_returns_stale(self):
        cache = IdentityCache(tolerance_hz=1000.0, max_age_s=300.0)
        cache.store(100e3, 1, now_s=0.0)
        cache.store(200e3, 2, now_s=250.0)
        assert cache.lookup(100e3, now_s=100.0) == 1
        assert cache.lookup(100e3, now_s=301.0) is None  # aged out
        assert len(cache) == 1
        assert cache.lookup(200e3, now_s=301.0) == 2
        assert cache.prune(1000.0) == 1
        assert len(cache) == 0

    def test_bisect_index_consistent_after_eviction(self):
        """Eviction must rebuild the sorted CFO index, not leave a stale
        entry for binary search to find."""
        cache = IdentityCache(tolerance_hz=5000.0)
        cache.store(500e3, 1)
        cache.store(504e3, 2)
        assert cache.lookup(504e3) == 2  # index built
        assert cache.evict(2)
        assert not cache.evict(2)
        assert cache.lookup(504e3) == 1  # nearest survivor, not the ghost
        assert cache.last_seen_s(2) is None

    def test_lookup_exclusion_falls_back_to_next_nearest(self):
        cache = IdentityCache(tolerance_hz=5000.0)
        cache.store(500e3, 1)
        cache.store(503e3, 2)
        assert cache.lookup(500.2e3) == 1
        assert cache.lookup(500.2e3, exclude={1}) == 2
        assert cache.lookup(500.2e3, exclude={1, 2}) is None

    def test_demoted_spike_rematches_second_nearest_account(self):
        """A spike that loses the nearest account to a closer rival must
        try the next account within tolerance, not fall to a re-decode."""
        from repro.core.network import resolve_cached_ids

        cache = IdentityCache(tolerance_hz=3000.0)
        cache.store(500.0e3, 1)
        cache.store(503.0e3, 2)
        ids, unknown = resolve_cached_ids(cache, [500.1e3, 500.2e3])
        assert ids == {500.1e3: 1, 500.2e3: 2}
        assert unknown == []

    def test_store_without_time_still_works(self):
        cache = IdentityCache(tolerance_hz=1000.0, max_entries=1)
        cache.store(100e3, 1)
        cache.store(200e3, 2)
        assert len(cache) == 1
        assert cache.lookup(200e3) == 2


class TestReaderNetwork:
    def test_step_identifies_and_localizes(self):
        cars = [(-6.0, 0), (5.0, 1)]
        scene, stations = build_corridor(cars, seed=21)
        network = ReaderNetwork()
        network.add_station(stations[0])
        finder = network.subscribe(CarFinder())

        reports = network.step(0.0)
        assert len(reports) == 1
        report = reports[0]
        assert isinstance(report, StationReport)
        assert report.n_tags == len(cars)

        truth_ids = {tag.packet.tag_id for tag in scene.tags}
        seen_ids = {obs.tag_id for obs in report.observations}
        assert seen_ids == truth_ids
        by_id = {tag.packet.tag_id: tag for tag in scene.tags}
        for obs in report.observations:
            truth_xy = by_id[obs.tag_id].position_m[:2]
            assert np.linalg.norm(obs.position_m - truth_xy) < 1.0
        assert set(finder.known_tags()) == truth_ids

    def test_identity_cache_skips_redecode(self):
        cars = [(-4.0, 0), (4.0, 1)]
        _, stations = build_corridor(cars, seed=12)
        network = ReaderNetwork()
        station = network.add_station(stations[0])

        first = network.step(0.0)[0]
        assert first.decode_results  # fresh ids had to be decoded
        assert len(station.identities) == len(cars)

        second = network.step(60.0)[0]
        assert second.decode_results == {}  # cache hit: no decode air time
        assert {o.tag_id for o in second.observations} == {
            o.tag_id for o in first.observations
        }

    def test_cached_id_claimed_by_at_most_one_spike_per_round(self):
        """Two simultaneous spikes must never resolve to the same cached
        account: the nearer one keeps it, the other gets decoded."""
        cars = [(-6.0, 0), (5.0, 1)]
        scene, stations = build_corridor(cars, seed=21)
        station = stations[0]
        cfos = sorted(
            tag.oscillator.carrier_hz - scene.lo_hz for tag in scene.tags
        )
        # Poison the cache: one stale account whose tolerance swallows
        # BOTH of this round's spikes.
        station.identities.tolerance_hz = 1e6
        station.identities.store(cfos[0] + 1e3, 999)
        network = ReaderNetwork()
        network.add_station(station)
        report = network.step(0.0)[0]
        seen = {obs.tag_id for obs in report.observations}
        assert len(seen) == 2  # never both mapped onto account 999
        # The far spike was decoded to its true account.
        truth_far = next(
            tag.packet.tag_id
            for tag in scene.tags
            if abs(tag.oscillator.carrier_hz - scene.lo_hz - cfos[1]) < 1.0
        )
        assert truth_far in seen

    def test_fanout_reaches_every_service(self):
        cars = [(3.0, 0)]
        scene, stations = build_corridor(cars, seed=13)
        network = ReaderNetwork()
        network.add_station(stations[0])
        finder = network.subscribe(CarFinder())
        x, y = scene.tags[0].position_m[:2]
        parking = network.subscribe(
            ParkingBillingService(spot_positions_m={5: np.array([x, y])})
        )
        network.step(0.0)
        tag_id = scene.tags[0].packet.tag_id
        assert finder.known_tags() == [tag_id]
        assert parking.occupancy() == {5: [tag_id]}

    def test_decode_disabled_reports_counts_only(self):
        cars = [(-5.0, 0), (6.0, 1)]
        _, stations = build_corridor(cars, seed=14)
        network = ReaderNetwork(decode=False)
        network.add_station(stations[0])
        report = network.step(0.0)[0]
        assert report.n_tags == len(cars)
        assert report.decode_results == {}
        assert report.observations == []  # no ids -> nothing dispatched

    def test_station_without_localizer_emits_no_observations(self):
        cars = [(4.0, 0)]
        _, stations = build_corridor(cars, seed=15)
        stations[0].localizer = None
        network = ReaderNetwork()
        network.add_station(stations[0])
        report = network.step(0.0)[0]
        assert report.observations == []
        assert len(stations[0].identities) == 1  # ids still cached

    def test_stale_fix_hints_expire_and_are_pruned(self):
        cars = [(-6.0, 0), (5.0, 1)]
        _, stations = build_corridor(cars, seed=21)
        station = stations[0]
        network = ReaderNetwork()
        network.add_station(station)
        network.step(0.0)
        assert len(station._last_fixes) == 2
        assert station.recall_fix(next(iter(station._last_fixes)), 1.0) is not None
        # Past the horizon the hint is neither used nor retained.
        tag_id = next(iter(station._last_fixes))
        assert station.recall_fix(tag_id, station.hint_horizon_s + 10.0) is None
        network.step(station.hint_horizon_s + 100.0)
        alive = {seen for _, (_, seen) in station._last_fixes.items()}
        assert alive == {station.hint_horizon_s + 100.0}  # only fresh fixes kept

    def test_multi_station_round(self):
        cars = [(-6.0, 0), (18.0, 1)]
        scene, stations = build_corridor(cars, pole_xs=(0.0, 14.0), seed=16)
        network = ReaderNetwork()
        for station in stations:
            network.add_station(station)
        finder = network.subscribe(CarFinder())
        reports = network.run([0.0, 1.0])
        assert len(reports) == 4  # 2 stations x 2 rounds
        assert {r.station for r in reports} == {"pole-0", "pole-1"}
        truth_ids = {tag.packet.tag_id for tag in scene.tags}
        assert set(finder.known_tags()) == truth_ids


class TestCorridorScene:
    def test_shapes(self):
        scene = corridor_scene(
            pole_xs_m=[0.0, 20.0],
            lane_ys_m=list(LANES),
            cars=[(2.0, 0), (9.0, 1)],
            rng=1,
        )
        assert len(scene.arrays) == 2
        assert len(scene.tags) == 2
        for tag in scene.tags:
            assert scene.road.contains(tag.position_m[:2])

    def test_invalid_lane_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            corridor_scene(
                pole_xs_m=[0.0], lane_ys_m=[-2.0], cars=[(0.0, 3)]
            )

    def test_empty_corridor(self):
        scene = corridor_scene(
            pole_xs_m=[0.0], lane_ys_m=list(LANES), cars=[]
        )
        assert scene.tags == []


class TestLaneProjectionLocalizer:
    def test_single_reader_fix_accuracy(self):
        """One pole + known lanes pins every car to ~decimeters."""
        cars = [(-8.0, 0), (0.0, 0), (6.0, 1), (12.0, 0)]
        scene, stations = build_corridor(cars, seed=17)
        station = stations[0]
        estimator = station.reader.estimator
        localizer = station.localizer
        collision = station.query_fn(0.0)
        for tag in scene.tags:
            aoas = estimator.estimate_all(collision)
            estimate = min(
                aoas,
                key=lambda a: abs(
                    a.cfo_hz - (tag.oscillator.carrier_hz - scene.lo_hz)
                ),
            )
            fix = localizer.locate(estimate, estimator)
            assert np.linalg.norm(fix - tag.position_m[:2]) < 1.0

    def test_hint_breaks_ties(self):
        cars = [(-8.0, 0)]
        scene, stations = build_corridor(cars, seed=18)
        station = stations[0]
        estimator = station.reader.estimator
        collision = station.query_fn(0.0)
        estimate = estimator.estimate_all(collision)[0]
        truth = scene.tags[0].position_m[:2]
        fix = station.localizer.locate(estimate, estimator, hint_xy=truth)
        assert np.linalg.norm(fix - truth) < 0.5

    def test_near_endfire_phase_wrap_not_rejected(self):
        """A baseline whose true phase sits next to +-pi can measure on
        the other side of the wrap; the ghost gate must treat that as a
        tiny error, not ~2 pi."""
        import numpy as np

        from repro.core.localization import (
            AoAEstimate,
            LaneProjectionLocalizer,
            aoa_from_phase,
            phase_from_aoa,
        )
        from repro.channel.geometry import RoadSegment

        cars = [(0.0, 0)]
        _, stations = build_corridor(cars, seed=21)
        station = stations[0]
        estimator = station.reader.estimator
        pairs = estimator.array.pairs()
        road = RoadSegment(x_min_m=-10.0, x_max_m=200.0, y_center_m=-1.75, width_m=3.5)
        localizer = LaneProjectionLocalizer(road=road, lane_ys_m=(-1.75,))
        truth = np.array([120.0, -1.75, 1.0])
        alphas = []
        for pair in pairs:
            phase = phase_from_aoa(pair.true_spatial_angle_rad(truth), pair.spacing_m)
            # Nudge the near-end-fire baseline across the +-pi boundary.
            if abs(abs(phase) - np.pi) < 0.2:
                phase = -np.sign(phase) * (2.0 * np.pi - abs(phase) - 0.01)
            alphas.append(aoa_from_phase(phase, pair.spacing_m))
        best = int(np.argmin([abs(a - np.pi / 2.0) for a in alphas]))
        estimate = AoAEstimate(cfo_hz=500e3, alphas_rad=tuple(alphas), best_pair_index=best)
        fix = localizer.locate(estimate, estimator)
        assert np.linalg.norm(fix - truth[:2]) < 5.0

    def test_cone_missing_road_raises(self):
        from repro.core.localization import AoAEstimate
        from repro.errors import GeometryError

        cars = [(0.0, 0)]
        _, stations = build_corridor(cars, seed=19)
        station = stations[0]
        # An end-fire measurement points along the road axis, far outside
        # any lane segment near the pole.
        fake = AoAEstimate(cfo_hz=500e3, alphas_rad=(0.01, 0.01, 0.01), best_pair_index=0)
        with pytest.raises(GeometryError):
            station.localizer.locate(fake, station.reader.estimator)
