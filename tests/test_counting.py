"""Unit tests for repro.core.counting (§5)."""

import numpy as np
import pytest

from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.noise import thermal_noise_power_w
from repro.channel.propagation import LosChannel
from repro.core.counting import BinClass, CollisionCounter, CountEstimate
from repro.errors import ConfigurationError
from tests.conftest import make_tag

FS = 4e6
NOISE_W = thermal_noise_power_w(FS)


def build_simulator(cfos, seed=0, positions=None):
    tags = []
    rng = np.random.default_rng(seed)
    for i, cfo in enumerate(cfos):
        if positions is not None:
            pos = positions[i]
        else:
            pos = (rng.uniform(-8, 8), rng.uniform(-11, -7), 1.0)
        tags.append(make_tag(cfo, position_m=pos, seed=100 + i))
    array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
    return StaticCollisionSimulator(
        tags, array.positions_m, LosChannel(), noise_power_w=NOISE_W, rng=seed
    )


class TestBasicCounting:
    def test_empty_scene_counts_zero(self):
        sim = build_simulator([])
        counter = CollisionCounter()
        assert counter.count(sim.query(0.0).antenna(0)).count == 0

    def test_single_tag(self):
        sim = build_simulator([500e3])
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        assert estimate.count == 1
        assert estimate.observations[0].label is BinClass.SINGLE

    def test_five_separated_tags(self):
        sim = build_simulator([100e3, 350e3, 600e3, 850e3, 1100e3])
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        assert estimate.count == 5
        assert estimate.n_single == 5

    def test_cfos_reported(self):
        sim = build_simulator([200e3, 900e3])
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        cfos = estimate.cfos_hz()
        assert cfos.size == 2
        assert cfos[0] == pytest.approx(200e3, abs=500)
        assert cfos[1] == pytest.approx(900e3, abs=500)


class TestMultiTagBin:
    def test_same_bin_pair_counted_as_two(self):
        """Two tags 800 Hz apart share a 1.95 kHz bin; the §5 test must
        upgrade the single spike to a count of 2."""
        hits = 0
        for seed in range(10):
            sim = build_simulator([500_000.0, 500_800.0], seed=seed)
            estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
            hits += estimate.count == 2
        assert hits >= 7  # blind spots (delta_f ~ 0) are physical

    def test_near_zero_separation_is_blind(self):
        """Two tags 5 Hz apart are indistinguishable inside 512 us — the
        inherent blind spot both tests share."""
        sim = build_simulator([500_000.0, 500_005.0], seed=1)
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        assert estimate.count in (1, 2)  # typically 1; never more

    def test_adjacent_bins_counted_separately(self):
        """Tags 2 bins apart are resolved peaks, one each."""
        sim = build_simulator([500_000.0, 503_906.0], seed=2)
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        assert estimate.count == 2


class TestMultiCapture:
    def test_count_multi_matches_single_on_sparse(self):
        sim = build_simulator([300e3, 700e3], seed=3)
        waves = [sim.query(i * 1e-3).antenna(0) for i in range(4)]
        counter = CollisionCounter()
        assert counter.count_multi(waves).count == 2

    def test_multi_capture_improves_dense(self):
        rng = np.random.default_rng(11)
        cfos = rng.uniform(20e3, 1.19e6, size=40)
        sim = build_simulator(cfos, seed=4)
        counter = CollisionCounter()
        single = counter.count(sim.query(0.0).antenna(0)).count
        waves = [sim.query(i * 1e-3).antenna(0) for i in range(4)]
        multi = counter.count_multi(waves).count
        assert abs(multi - 40) <= abs(single - 40) + 2

    def test_empty_capture_list_rejected(self):
        with pytest.raises(ConfigurationError):
            CollisionCounter().count_multi([])


class TestRegimes:
    def test_dense_mode_triggers_on_crowded_band(self):
        rng = np.random.default_rng(12)
        cfos = rng.uniform(20e3, 1.19e6, size=35)
        sim = build_simulator(cfos, seed=5)
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        assert estimate.dense_mode

    def test_sparse_mode_for_few_tags(self):
        sim = build_simulator([300e3, 900e3], seed=6)
        estimate = CollisionCounter().count(sim.query(0.0).antenna(0))
        assert not estimate.dense_mode

    def test_dense_threshold_order_validated(self):
        with pytest.raises(ConfigurationError):
            CollisionCounter(min_snr_db=10.0, dense_snr_db=12.0)


class TestShiftMethod:
    def test_shift_method_counts_separated_tags(self):
        sim = build_simulator([150e3, 450e3, 800e3], seed=7)
        counter = CollisionCounter(method="shift")
        assert counter.count(sim.query(0.0).antenna(0)).count == 3

    def test_shift_method_detects_cobinned_pair(self):
        hits = 0
        for seed in range(10):
            sim = build_simulator([600_000.0, 600_900.0], seed=20 + seed)
            counter = CollisionCounter(method="shift")
            estimate = counter.count(sim.query(0.0).antenna(0))
            hits += estimate.count == 2
        assert hits >= 6

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            CollisionCounter(method="wavelet")


class TestEstimateAccounting:
    def test_contribution_rules(self):
        estimate = CountEstimate(count=0)
        assert estimate.n_single == estimate.n_multiple == estimate.n_rejected == 0

    def test_subwindow_minimum(self):
        with pytest.raises(ConfigurationError):
            CollisionCounter(n_subwindows=2)

    def test_accuracy_over_random_scenes(self):
        """Average accuracy within a few percent at moderate density."""
        counts = []
        for seed in range(8):
            rng = np.random.default_rng(400 + seed)
            cfos = rng.uniform(20e3, 1.19e6, size=10)
            sim = build_simulator(cfos, seed=500 + seed)
            counts.append(CollisionCounter().count(sim.query(0.0).antenna(0)).count)
        assert np.mean(counts) == pytest.approx(10.0, abs=1.0)


class TestSfftProbeParity:
    """The sparse-probe ablation must be a pure regime-picker swap.

    ``probe="sfft"`` replaces only the density probe's candidate scan
    (sub-linear bucketized recovery instead of the dense spectrum
    sweep); refinement, classification and the joint tone fit run the
    identical full-precision code after it — so on the paper's Fig-5
    style workloads the two probes must agree on the count, the CFOs,
    and the dense-regime flag.
    """

    @pytest.mark.parametrize("seed", [5, 6])
    @pytest.mark.parametrize("m", [2, 10])
    def test_sparse_scenes_bit_equal(self, m, seed):
        rng = np.random.default_rng(seed)
        cfos = rng.uniform(20e3, 1.19e6, size=m)
        capture = build_simulator(cfos, seed=seed).query(0.0).antenna(0)
        dense = CollisionCounter(probe="dense").count(capture)
        sfft = CollisionCounter(probe="sfft").count(capture)
        assert sfft.count == dense.count
        assert sfft.dense_mode == dense.dense_mode
        assert np.array_equal(sfft.cfos_hz(), dense.cfos_hz())

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [5, 6])
    def test_dense_scene_bit_equal(self, seed):
        """35 tags crowd the band past the dense trigger: both probes
        must hand the same regime decision to the same dense-detection
        pass."""
        rng = np.random.default_rng(seed + 7)
        cfos = rng.uniform(20e3, 1.19e6, size=35)
        capture = build_simulator(cfos, seed=seed).query(0.0).antenna(0)
        dense = CollisionCounter(probe="dense").count(capture)
        sfft = CollisionCounter(probe="sfft").count(capture)
        assert sfft.dense_mode == dense.dense_mode
        assert sfft.count == dense.count
        assert np.array_equal(sfft.cfos_hz(), dense.cfos_hz())

    def test_unknown_probe_rejected(self):
        with pytest.raises(ConfigurationError):
            CollisionCounter(probe="fancy")


class TestBatchedToneFit:
    def test_burst_stacked_fit_bit_exact(self):
        """``batch_fit`` solves the per-burst joint tone fit as one
        stacked least-squares; it must reproduce the per-capture loop
        observation-for-observation."""
        rng = np.random.default_rng(7)
        cfos = rng.uniform(20e3, 1.19e6, size=6)
        sim = build_simulator(cfos, seed=7)
        burst = [sim.query(0.0).antenna(0) for _ in range(4)]
        batched = CollisionCounter(batch_fit=True).count_multi(burst)
        looped = CollisionCounter(batch_fit=False).count_multi(burst)
        assert batched.count == looped.count
        assert len(batched.observations) == len(looped.observations)
        for b, l in zip(batched.observations, looped.observations):
            assert str(b) == str(l)
