"""Unit tests for repro.sim.city.mesh (the corridor-graph city layer)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.city import CityMesh
from repro.sim.events import EventScheduler
from repro.sim.traffic import TrafficLight


def chain_mesh(handoff, seed=7, n_poles=2, **mesh_kwargs):
    """The 3-corridor / 2-intersection main line A -> B -> C."""
    mesh = CityMesh(rng=seed, handoff=handoff, **mesh_kwargs)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_node(
        "v", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0, offset_s=3.0)
    )
    mesh.add_edge("A", dst="u", n_poles=n_poles)
    mesh.add_edge("B", src="u", dst="v", n_poles=n_poles)
    mesh.add_edge("C", src="v", n_poles=n_poles)
    mesh.add_traffic(
        [(("A", "B", "C"), 0.8), (("A", "B"), 0.2)],
        rate_per_s=0.5,
        speed_range_m_s=(10.0, 16.0),
    )
    return mesh


def y_mesh(seed=5):
    """A fork: traffic enters at A; most continues to B (the predicted
    successor), a quarter turns off to D — the mis-push population."""
    mesh = CityMesh(rng=seed, handoff="push")
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_edge("A", dst="u", n_poles=2)
    mesh.add_edge("B", src="u", n_poles=2)
    mesh.add_edge("D", src="u", n_poles=2)
    mesh.add_traffic(
        [(("A", "B"), 0.75), (("A", "D"), 0.25)],
        rate_per_s=0.5,
        speed_range_m_s=(11.0, 15.0),
    )
    return mesh


class TestGraphConstruction:
    def test_duplicate_names_rejected(self):
        mesh = CityMesh(rng=1)
        mesh.add_node("u")
        with pytest.raises(ConfigurationError):
            mesh.add_node("u")
        mesh.add_edge("A", dst="u")
        with pytest.raises(ConfigurationError):
            mesh.add_edge("A", dst="u")

    def test_unknown_node_rejected(self):
        mesh = CityMesh(rng=1)
        with pytest.raises(ConfigurationError):
            mesh.add_edge("A", dst="nowhere")

    def test_edge_wider_than_interference_range_rejected(self):
        """An edge whose own poles could not hear each other would
        silently break the single-street CSMA semantics."""
        mesh = CityMesh(rng=1, interference_range_m=300.0, frame_gap_m=1000.0)
        with pytest.raises(ConfigurationError):
            mesh.add_edge("A", n_poles=10, pole_spacing_m=40.0)

    def test_frame_gap_must_exceed_interference_range(self):
        with pytest.raises(ConfigurationError):
            CityMesh(rng=1, interference_range_m=500.0, frame_gap_m=400.0)

    def test_edges_laid_out_apart(self):
        """Consecutive edge frames never share the ether."""
        mesh = CityMesh(rng=1)
        mesh.add_node("u")
        a = mesh.add_edge("A", dst="u")
        b = mesh.add_edge("B", src="u")
        assert b.entry_x_m - a.exit_x_m >= mesh.frame_gap_m
        # Station names are globally scoped by the edge.
        assert a.first_station.name == "A/pole-0"
        assert b.first_station.cell.name == "B/cell-0"

    def test_route_validation(self):
        mesh = CityMesh(rng=1)
        mesh.add_node("u")
        mesh.add_edge("A", dst="u")
        mesh.add_edge("B", src="u")
        mesh.add_edge("X")  # disconnected
        with pytest.raises(ConfigurationError):
            mesh.add_traffic([(("A", "X"), 1.0)], rate_per_s=0.1)
        with pytest.raises(ConfigurationError):  # two entry edges in one source
            mesh.add_traffic([(("A", "B"), 1.0), (("B",), 1.0)], rate_per_s=0.1)
        with pytest.raises(ConfigurationError):  # weights must be positive
            mesh.add_traffic([(("A", "B"), 0.0)], rate_per_s=0.1)
        mesh.add_traffic([(("A", "B"), 1.0)], rate_per_s=0.1)  # valid

    def test_turn_policy_follows_flow_mass(self):
        mesh = CityMesh(rng=1)
        mesh.add_node("u")
        mesh.add_edge("A", dst="u")
        mesh.add_edge("B", src="u")
        mesh.add_edge("D", src="u")
        mesh.add_traffic(
            [(("A", "B"), 0.3), (("A", "D"), 0.7)], rate_per_s=0.2
        )
        assert mesh._turn_policy() == {"A": "D"}

    def test_run_once_guard(self):
        mesh = CityMesh(rng=1)
        mesh.add_edge("A")
        mesh.run(0.5)
        with pytest.raises(ConfigurationError):
            mesh.run(0.5)
        with pytest.raises(ConfigurationError):
            mesh.add_edge("B")

    def test_empty_mesh_rejected(self):
        with pytest.raises(ConfigurationError):
            CityMesh(rng=1).run(1.0)


class TestIntersectionDwell:
    def light_node(self):
        from repro.sim.city import MeshNode

        return MeshNode(
            "u", light=TrafficLight(green_s=10.0, yellow_s=2.0, red_s=8.0)
        )

    def test_green_arrival_rolls_through(self):
        assert self.light_node().departure_s(3.0) == 3.0

    def test_yellow_arrival_proceeds(self):
        assert self.light_node().departure_s(11.0) == 11.0

    def test_red_arrival_waits_for_the_cycle_boundary(self):
        node = self.light_node()
        assert node.departure_s(13.0) == pytest.approx(20.0)
        assert node.departure_s(19.9) == pytest.approx(20.0)

    def test_headway_queue_never_releases_into_the_red(self):
        """A queue draining through a short green holds the remainder
        for the next green: the signal check applies to the headway-
        delayed release instant, not just the arrival."""
        mesh = CityMesh(rng=1)
        node = mesh.add_node(
            "u",
            light=TrafficLight(green_s=4.0, yellow_s=0.0, red_s=8.0),
            headway_s=2.0,
        )
        departures = [mesh._release(node, 11.0) for _ in range(5)]
        # Cycle: green [0,4) + [12,16) + [24,28)..., red elsewhere.
        assert departures == pytest.approx([12.0, 14.0, 24.0, 26.0, 36.0])
        for depart in departures:
            assert node.light.is_go(depart)

    def test_uncontrolled_node(self):
        from repro.sim.city import MeshNode

        assert MeshNode("u").departure_s(13.0) == 13.0


class TestCorridorPriming:
    def corridor(self):
        from repro.sim.city import CityCorridor
        from repro.sim.scenario import city_corridor_scene

        scene, trajectories = city_corridor_scene(n_poles=2, n_cars=0, rng=1)
        return CityCorridor.build(
            scene, trajectories, lane_ys_m=(-1.75, -5.25), rng=1
        )

    def test_admit_requires_primed_corridor(self):
        from repro.sim.city import MovingTag
        from repro.sim.mobility import ConstantSpeedTrajectory
        from repro.sim.scenario import make_tags
        import numpy as np

        corridor = self.corridor()
        tag = MovingTag(
            transponder=make_tags(np.array([[0.0, -1.75, 1.0]]), rng=1)[0],
            trajectory=ConstantSpeedTrajectory(
                start_m=np.array([0.0, -1.75, 1.0]),
                velocity_m_s=np.array([12.0, 0.0, 0.0]),
            ),
        )
        with pytest.raises(ConfigurationError):
            corridor.admit(tag, EventScheduler(), 0.0)

    def test_finish_requires_run(self):
        with pytest.raises(ConfigurationError):
            self.corridor().finish()

    def test_prime_marks_the_single_use(self):
        corridor = self.corridor()
        corridor.prime(EventScheduler(), 1.0)
        with pytest.raises(ConfigurationError):
            corridor.run(1.0)

    def test_superseded_push_note_becomes_a_miss_not_a_later_hit(self):
        """If something other than the pushed entry resolves the first
        sighting (the entry was evicted or out of tolerance, so a
        handoff or re-decode covered it), the note must convert to a
        push *miss* immediately — otherwise the next round's plain
        own-cache hit would masquerade as a push hit."""
        corridor = self.corridor()
        station = corridor.stations[0]
        station.receive_push(500e3, 7, from_station="elsewhere", now_s=1.0)
        corridor._push_note_superseded(station, 7)
        assert 7 not in station.pushed
        assert len(corridor.ledger.push_misses) == 1
        miss = corridor.ledger.push_misses[0]
        assert miss.tag_id == 7 and miss.t_s == 1.0
        assert miss.from_station == "elsewhere"
        # A later own-cache hit therefore records as "own", not "push".
        corridor._push_note_superseded(station, 7)  # idempotent
        assert len(corridor.ledger.push_misses) == 1


@pytest.mark.slow
class TestCityMeshRun:
    def test_push_beats_pull_across_corridor_boundaries(self):
        """The tentpole behavior: predictive push resolves most
        cross-corridor entries ahead of arrival and strictly lowers the
        first-sighting decode cost at the entered corridor's first pole,
        on a clean street (zero corrupted responses mesh-wide)."""
        push = chain_mesh("push").run(22.0)
        pull = chain_mesh("pull").run(22.0)
        assert push.cars_transferred > 0
        assert push.cross_entries > 0
        assert push.cross_resolution_rate > 0.5
        assert push.ledger.push_hits > 0
        # Pull never pushes and resolves no boundary crossing.
        assert pull.ledger.pushes_sent == 0
        assert pull.cross_resolved == 0
        assert pull.cross_redecodes == pull.cross_entries
        # The headline: strictly cheaper first sightings at first poles.
        assert push.first_pole_queries and pull.first_pole_queries
        assert push.mean_first_pole_queries < pull.mean_first_pole_queries
        # One shared air log, CSMA on: the street stays clean.
        assert push.corrupted_responses == 0
        assert pull.corrupted_responses == 0
        # Directory bookkeeping stayed consistent throughout.
        assert push.directory["reports"] > 0

    def test_mis_pushed_entry_falls_back_to_redecode(self):
        """A car that turns off the predicted route leaves its pushed
        entry unconsumed: the ledger records the miss, and the car is
        re-decoded wherever it actually went — cleanly, with no trace
        of the wrong-pole entry beyond the audit."""
        result = y_mesh(seed=5).run(22.0)
        ledger = result.ledger
        assert len(ledger.push_misses) > 0
        # The cross-corridor misses were all aimed at the predicted
        # edge B (the majority turn) by A's boundary pole. (Run-end can
        # also strand within-corridor pushes for cars still en route —
        # those are misses too, but not the off-route kind under test.)
        cross_misses = [
            miss
            for miss in ledger.push_misses
            if miss.from_station.startswith("A/")
        ]
        assert cross_misses
        for miss in cross_misses:
            assert miss.target.startswith("B/")
        # At least one mis-pushed car was re-decoded on D, the edge it
        # actually took.
        d_redecodes = {
            record.tag_id
            for record in ledger.records
            if record.kind == "redecode" and record.station.startswith("D/")
        }
        missed_tags = {miss.tag_id for miss in ledger.push_misses}
        assert d_redecodes & missed_tags
        # The fallback spent real decode queries (clean re-decode).
        assert any(
            record.n_queries > 0
            for record in ledger.records
            if record.kind == "redecode" and record.station.startswith("D/")
        )
        # And the happy path still worked for the majority.
        assert ledger.push_hits > 0
        assert result.corrupted_responses == 0

    def test_deterministic_under_fixed_seed(self):
        """Two meshes from one seed reproduce the whole city run —
        summaries, ledger records, pushes and misses — exactly. Guards
        the shared-scheduler/air-log/directory plumbing against
        nondeterministic ordering."""
        import json

        first = chain_mesh("push", seed=11).run(16.0)
        second = chain_mesh("push", seed=11).run(16.0)
        # JSON-normalized comparison: NaN fields (an edge with no
        # decode-identified tags has NaN means) compare equal as text.
        assert json.dumps(first.summary(), sort_keys=True) == json.dumps(
            second.summary(), sort_keys=True
        )
        assert first.ledger.records == second.ledger.records
        assert first.ledger.pushes == second.ledger.pushes
        assert first.ledger.push_misses == second.ledger.push_misses
        assert first.first_pole_queries == second.first_pole_queries
