"""Unit tests for repro.apps (the §1/§4 smart services)."""

import numpy as np
import pytest

from repro.apps import (
    CarFinder,
    ParkingBillingService,
    RedLightDetector,
    TagObservation,
)
from repro.errors import ConfigurationError
from repro.sim.traffic import TrafficLight


def obs(tag_id, x, y, t):
    return TagObservation(tag_id=tag_id, position_m=np.array([x, y]), timestamp_s=t)


@pytest.fixture
def light():
    # green 0-30, yellow 30-33, red 33-60.
    return TrafficLight(green_s=30.0, yellow_s=3.0, red_s=27.0)


class TestRedLightDetector:
    def test_running_the_red_is_flagged(self, light):
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        detector.observe(obs(1, -10.0, 0.0, 40.0))  # red phase
        violation = detector.observe(obs(1, 10.0, 0.0, 42.0))
        assert violation is not None
        assert violation.tag_id == 1
        assert 40.0 < violation.crossed_at_s < 42.0
        assert violation.speed_m_s == pytest.approx(10.0)

    def test_green_crossing_is_legal(self, light):
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        detector.observe(obs(2, -10.0, 0.0, 10.0))
        assert detector.observe(obs(2, 10.0, 0.0, 12.0)) is None
        assert detector.violations == []

    def test_queue_creep_not_flagged(self, light):
        detector = RedLightDetector(light=light, stop_line_x_m=0.0, min_speed_m_s=1.5)
        detector.observe(obs(3, -1.0, 0.0, 40.0))
        assert detector.observe(obs(3, 0.5, 0.0, 42.0)) is None  # 0.75 m/s

    def test_car_behind_line_not_flagged(self, light):
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        detector.observe(obs(4, -20.0, 0.0, 40.0))
        assert detector.observe(obs(4, -5.0, 0.0, 42.0)) is None

    def test_crossing_time_interpolated_into_phase(self, light):
        """A car observed before the red that crosses after it starts."""
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        # Observations at t=32 (yellow) and t=36 (red); the car crosses
        # x=0 at t ~ 35 -> red.
        detector.observe(obs(5, -15.0, 0.0, 32.0))
        violation = detector.observe(obs(5, 5.0, 0.0, 36.0))
        assert violation is not None and violation.phase == "red"

    def test_opposite_direction(self, light):
        detector = RedLightDetector(
            light=light, stop_line_x_m=0.0, approach_direction=-1.0
        )
        detector.observe(obs(6, 10.0, 0.0, 40.0))
        assert detector.observe(obs(6, -10.0, 0.0, 42.0)) is not None

    def test_fix_exactly_on_stop_line_still_caught(self, light):
        """Regression: a previous fix sitting exactly on the line used to
        make the subsequent crossing invisible."""
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        detector.observe(obs(7, -10.0, 0.0, 38.0))
        assert detector.observe(obs(7, 0.0, 0.0, 40.0)) is None  # at the line
        violation = detector.observe(obs(7, 10.0, 0.0, 42.0))
        assert violation is not None
        assert violation.crossed_at_s == pytest.approx(40.0)
        assert len(detector.violations) == 1  # and exactly once

    def test_on_line_during_red_departing_on_green_is_legal(self, light):
        """A car waiting ON the line through the red that departs once
        the light turns green must not be ticketed: the crossing instant
        is only pinned to a window that includes the green phase."""
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        detector.observe(obs(12, -10.0, 0.0, 50.0))  # red
        assert detector.observe(obs(12, 0.0, 0.0, 58.0)) is None  # still red
        # Next cycle's green starts at t=60; car leaves, seen at t=63.
        assert detector.observe(obs(12, 12.0, 0.0, 63.0)) is None
        assert detector.violations == []

    def test_stopping_dead_on_the_line_is_legal(self, light):
        detector = RedLightDetector(light=light, stop_line_x_m=0.0)
        detector.observe(obs(8, -10.0, 0.0, 40.0))
        assert detector.observe(obs(8, 0.0, 0.0, 42.0)) is None
        assert detector.violations == []

    def test_tracks_are_pruned_at_horizon(self, light):
        detector = RedLightDetector(light=light, stop_line_x_m=0.0, horizon_s=50.0)
        for tag_id in range(200):
            detector.observe(obs(tag_id, -10.0, 0.0, float(tag_id)))
        # Cars from more than a horizon ago have been forgotten; the
        # table is bounded by the active population, not history length.
        assert detector.n_tracked < 150
        detector.prune(now_s=1000.0)
        assert detector.n_tracked == 0

    def test_gap_beyond_horizon_never_interpolates(self, light):
        """Two sightings a horizon apart are different visits, not one
        slow crossing."""
        detector = RedLightDetector(light=light, stop_line_x_m=0.0, horizon_s=50.0)
        detector.observe(obs(9, -1.0, 0.0, 40.0))
        # 36 minutes later (also a red phase): same car back at the light.
        assert detector.observe(obs(9, 100.0, 0.0, 2196.0)) is None
        assert detector.violations == []


class TestParkingBilling:
    @pytest.fixture
    def service(self):
        spots = {i: np.array([6.0 * i, -10.0]) for i in range(1, 4)}
        return ParkingBillingService(spot_positions_m=spots, rate_per_hour=3.0)

    def test_session_opens_and_bills_on_departure(self, service):
        service.observe(obs(1, 6.0, -10.0, 0.0))
        service.observe(obs(1, 6.1, -10.0, 1800.0))  # still parked
        bills = service.sweep(now_s=1800.0 + 200.0)
        assert len(bills) == 1
        bill = bills[0]
        assert bill.spot_index == 1
        assert bill.duration_s == pytest.approx(1800.0)
        assert bill.amount == pytest.approx(1.5)  # half an hour at 3/h

    def test_occupancy_tracking(self, service):
        service.observe(obs(1, 6.0, -10.0, 0.0))
        service.observe(obs(2, 12.0, -10.0, 0.0))
        assert service.occupancy() == {1: [1], 2: [2]}

    def test_driving_past_spots_opens_then_closes(self, service):
        """A car cruising along the curb must not accumulate charges."""
        service.observe(obs(3, 6.0, -10.0, 0.0))
        service.observe(obs(3, 12.0, -10.0, 5.0))  # moved to another spot
        service.observe(obs(3, 18.0, -10.0, 10.0))
        # Sessions were opened/closed as it moved; the "bills" are seconds.
        assert all(b.amount < 0.01 for b in service.bills)

    def test_far_from_spots_ignored(self, service):
        service.observe(obs(4, 100.0, 5.0, 0.0))
        assert service.occupancy() == {}

    def test_transient_misfix_does_not_fragment_the_session(self, service):
        """Regression: one mis-localized fix near a neighboring spot
        used to close the session and immediately reopen it, splitting
        one park into two bills (double-billing the minimum/overhead and
        resetting the meter). §6 fixes jitter; a single outlier must be
        forgiven once the car is seen back at its spot."""
        service.observe(obs(1, 6.0, -10.0, 0.0))
        service.observe(obs(1, 11.5, -10.0, 600.0))  # one outlier near spot 2
        service.observe(obs(1, 6.0, -10.0, 1200.0))  # back at spot 1
        assert service.bills == []  # nothing closed mid-park
        assert service.occupancy() == {1: [1]}
        bills = service.sweep(now_s=1200.0 + 200.0)
        assert len(bills) == 1
        assert bills[0].duration_s == pytest.approx(1200.0)  # one continuous park

    def test_two_foreign_fixes_confirm_a_rehome(self, service):
        """Two consecutive sightings at the same other spot really are a
        move: close the old session (billed through the last fix *at*
        the old spot) and open the new one at the first foreign fix."""
        service.observe(obs(1, 6.0, -10.0, 0.0))
        service.observe(obs(1, 12.0, -10.0, 900.0))
        service.observe(obs(1, 12.0, -10.0, 960.0))
        assert len(service.bills) == 1
        assert service.bills[0].spot_index == 1
        assert service.bills[0].end_s == pytest.approx(0.0)  # last fix at spot 1
        assert service.occupancy() == {2: [1]}
        bills = service.sweep(now_s=960.0 + 200.0)
        assert bills[0].spot_index == 2
        assert bills[0].start_s == pytest.approx(900.0)

    def test_occupancy_keeps_colliding_sessions(self, service):
        """Regression: two open sessions mapping to the same spot index
        (a mis-localized neighbor during a swap) used to shadow each
        other in occupancy() — the dict comprehension kept only one."""
        service.observe(obs(1, 6.0, -10.0, 0.0))
        service.observe(obs(2, 6.4, -10.0, 1.0))  # neighbor mis-fixed onto spot 1
        assert service.occupancy() == {1: [1, 2]}

    def test_bad_position_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            TagObservation(tag_id=1, position_m=np.zeros(3), timestamp_s=0.0)


class TestCarFinder:
    def test_returns_latest_fix(self):
        finder = CarFinder()
        finder.observe(obs(7, 0.0, 0.0, 10.0))
        finder.observe(obs(7, 30.0, -10.0, 50.0))
        assert finder.locate(7).position_m[0] == pytest.approx(30.0)

    def test_stale_update_ignored(self):
        finder = CarFinder()
        finder.observe(obs(7, 30.0, -10.0, 50.0))
        finder.observe(obs(7, 0.0, 0.0, 10.0))  # out-of-order upload
        assert finder.locate(7).timestamp_s == 50.0

    def test_unknown_tag_raises(self):
        with pytest.raises(KeyError):
            CarFinder().locate(99)

    def test_known_tags_sorted(self):
        finder = CarFinder()
        finder.observe(obs(5, 0.0, 0.0, 0.0))
        finder.observe(obs(2, 0.0, 0.0, 0.0))
        assert finder.known_tags() == [2, 5]
