"""Unit tests for repro.dsp.filters and repro.dsp.beamforming and sar."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, PointScatterer
from repro.channel.propagation import LosChannel
from repro.constants import WAVELENGTH_M
from repro.dsp.beamforming import bartlett_spectrum, music_spectrum, steering_matrix
from repro.dsp.filters import apply_fir, design_complex_bandpass
from repro.dsp.sar import ArrayMeasurement, CircularSAR, angular_peak_ratio
from repro.errors import ConfigurationError
from repro.phy.waveform import Waveform

FS = 4e6


class TestBandpass:
    def test_passband_gain_unity(self):
        taps = design_complex_bandpass(FS, 400e3, 50e3, n_taps=257)
        tone = Waveform.tone(400e3, 512e-6, FS)
        out = apply_fir(tone, taps)
        mid = slice(300, 1700)  # avoid edge transients
        assert np.mean(np.abs(out.samples[mid])) == pytest.approx(1.0, rel=0.02)

    def test_stopband_rejection(self):
        taps = design_complex_bandpass(FS, 400e3, 30e3, n_taps=257)
        tone = Waveform.tone(800e3, 512e-6, FS)
        out = apply_fir(tone, taps)
        assert np.mean(np.abs(out.samples[300:1700])) < 0.01

    def test_even_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            design_complex_bandpass(FS, 400e3, 50e3, n_taps=128)

    def test_bandwidth_validation(self):
        with pytest.raises(ConfigurationError):
            design_complex_bandpass(FS, 400e3, 3e6)

    def test_apply_preserves_timebase(self):
        taps = design_complex_bandpass(FS, 100e3, 50e3)
        wave = Waveform.tone(100e3, 1e-4, FS, t0_s=0.5)
        assert apply_fir(wave, taps).t0_s == 0.5


class TestBeamforming:
    @pytest.fixture
    def circle(self):
        psi = 2 * np.pi * np.arange(64) / 64
        return 0.7 * np.stack([np.cos(psi), np.sin(psi), np.zeros_like(psi)], axis=1)

    def test_steering_shape(self, circle):
        grid = np.linspace(-np.pi, np.pi, 181)
        assert steering_matrix(circle, WAVELENGTH_M, grid).shape == (64, 181)

    def test_bartlett_peaks_at_source(self, circle):
        azimuth = np.deg2rad(40.0)
        direction = np.array([np.cos(azimuth), np.sin(azimuth), 0.0])
        x = np.exp(2j * np.pi / WAVELENGTH_M * (circle @ direction))
        grid = np.linspace(-np.pi, np.pi, 721)
        profile = bartlett_spectrum(x, circle, WAVELENGTH_M, grid)
        assert np.rad2deg(grid[np.argmax(profile)]) == pytest.approx(40.0, abs=1.0)

    def test_bartlett_normalized(self, circle):
        x = np.ones(64, dtype=complex)
        profile = bartlett_spectrum(x, circle, WAVELENGTH_M, np.linspace(-np.pi, np.pi, 91))
        assert profile.max() == pytest.approx(1.0)

    def test_music_resolves_two_incoherent_sources(self, circle):
        rng = np.random.default_rng(0)
        az = [np.deg2rad(-30.0), np.deg2rad(55.0)]
        steer = steering_matrix(circle, WAVELENGTH_M, np.array(az))
        snapshots = []
        for _ in range(200):
            gains = rng.normal(size=2) + 1j * rng.normal(size=2)
            snapshots.append(steer @ gains + 0.01 * (rng.normal(size=64) + 1j * rng.normal(size=64)))
        x = np.stack(snapshots, axis=1)
        grid = np.linspace(-np.pi, np.pi, 721)
        profile = music_spectrum(x, circle, WAVELENGTH_M, grid, n_sources=2)
        found = np.sort(grid[_top_two(profile)])
        assert np.rad2deg(found[0]) == pytest.approx(-30.0, abs=1.5)
        assert np.rad2deg(found[1]) == pytest.approx(55.0, abs=1.5)

    def test_music_source_count_validated(self, circle):
        with pytest.raises(ConfigurationError):
            music_spectrum(np.ones(64, complex), circle, WAVELENGTH_M, np.zeros(3), n_sources=64)


def _top_two(profile):
    order = np.argsort(profile)[::-1]
    first = order[0]
    for idx in order[1:]:
        if abs(idx - first) > 20:
            return sorted([first, idx])
    return sorted(order[:2])


class TestCircularSar:
    def test_positions_on_circle(self):
        sar = CircularSAR(center_m=np.array([0.0, 0.0, 3.8]), n_positions=90)
        positions = sar.positions()
        radii = np.linalg.norm(positions[:, :2], axis=1)
        assert np.allclose(radii, 0.70)
        assert np.allclose(positions[:, 2], 3.8)

    def test_profile_peaks_toward_tag(self):
        sar = CircularSAR(center_m=np.array([0.0, 0.0, 3.8]), n_positions=180)
        tag = np.array([20.0, -15.0, 1.0])
        measurement = sar.measure(tag, LosChannel())
        grid = np.linspace(-np.pi, np.pi, 721)
        profile = measurement.bartlett_profile(grid)
        found = np.rad2deg(grid[np.argmax(profile)])
        expected = np.rad2deg(np.arctan2(-15.0, 20.0))
        assert found == pytest.approx(expected, abs=2.0)

    def test_peak_ratio_with_scatterer(self):
        """A weak scatterer produces a secondary lobe; the ratio metric
        must report LoS dominance (Fig 14's 27x regime)."""
        sar = CircularSAR(center_m=np.array([0.0, 0.0, 3.8]), n_positions=180)
        tag = np.array([20.0, 0.0, 1.0])
        channel = MultipathChannel(
            paths=(PointScatterer(np.array([-5.0, 18.0, 1.0]), reflectivity=0.35),)
        )
        measurement = sar.measure(tag, channel)
        grid = np.linspace(-np.pi, np.pi, 721)
        profile = measurement.bartlett_profile(grid)
        ratio = angular_peak_ratio(profile, grid)
        assert 1.0 < ratio < np.inf

    def test_measurement_validates_shapes(self):
        with pytest.raises(ConfigurationError):
            ArrayMeasurement(np.zeros((4, 3)), np.zeros(3), WAVELENGTH_M)

    def test_too_few_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            CircularSAR(center_m=np.zeros(3), n_positions=4)

    def test_peak_ratio_single_peak_is_inf(self):
        grid = np.linspace(-np.pi, np.pi, 361)
        profile = np.exp(-((grid - 0.5) ** 2) / 0.001)
        assert angular_peak_ratio(profile, grid) == np.inf
