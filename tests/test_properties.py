"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.geometry import aoa_cone_conic, spatial_angle_rad
from repro.constants import WAVELENGTH_M
from repro.core.localization import aoa_from_phase, phase_from_aoa
from repro.core.theory import p_no_miss_exact, p_no_miss_naive, p_no_miss_paper_bound
from repro.dsp.spectrum import single_bin_dft
from repro.hw.adc import ADC
from repro.hw.power import DutyCycle, PowerModel
from repro.phy.crc import CRC16_CCITT
from repro.phy.manchester import manchester_decode, manchester_encode
from repro.phy.waveform import Waveform

FS = 4e6

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


class TestWaveformProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=32),
    )
    def test_addition_commutes(self, n_a, n_b, offset_samples):
        rng = np.random.default_rng(n_a * 1000 + n_b * 10 + offset_samples)
        a = Waveform(rng.normal(size=n_a) + 1j * rng.normal(size=n_a), FS, 0.0)
        b = Waveform(
            rng.normal(size=n_b) + 1j * rng.normal(size=n_b), FS, offset_samples / FS
        )
        left = a + b
        right = b + a
        assert left.t0_s == right.t0_s
        assert np.allclose(left.samples, right.samples)

    @given(st.floats(min_value=1e3, max_value=1.9e6), finite_floats)
    def test_mixing_is_invertible(self, freq, phase):
        rng = np.random.default_rng(int(freq))
        wave = Waveform(rng.normal(size=256) + 1j * rng.normal(size=256), FS, 0.0)
        roundtrip = wave.mixed(freq, phase).mixed(-freq, -phase)
        assert np.allclose(roundtrip.samples, wave.samples, atol=1e-12)

    @given(st.floats(min_value=1e3, max_value=1.5e6))
    def test_tone_dft_recovers_amplitude(self, freq):
        wave = Waveform.tone(freq, 256e-6, FS, amplitude=1.0)
        assert abs(single_bin_dft(wave, freq)) == pytest.approx(1.0, rel=1e-6)


class TestCodingProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=512))
    def test_manchester_roundtrip(self, bits):
        bits = np.array(bits, dtype=np.uint8)
        assert np.array_equal(manchester_decode(manchester_encode(bits)), bits)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=512))
    def test_manchester_dc_balance(self, bits):
        chips = manchester_encode(np.array(bits, dtype=np.uint8))
        assert chips.mean() == pytest.approx(0.5)

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=128),
        st.integers(min_value=0),
        st.integers(min_value=0),
    )
    def test_crc_detects_double_bit_errors(self, bits, p1, p2):
        framed = CRC16_CCITT.append(np.array(bits, dtype=np.uint8))
        a = p1 % framed.size
        b = p2 % framed.size
        corrupted = framed.copy()
        corrupted[a] ^= 1
        corrupted[b] ^= 1
        if a == b:
            assert CRC16_CCITT.check(corrupted)  # flips cancel
        else:
            assert not CRC16_CCITT.check(corrupted)


class TestGeometryProperties:
    @given(
        st.floats(min_value=1.0, max_value=40.0),
        st.floats(min_value=-40.0, max_value=-1.0),
        st.floats(min_value=2.0, max_value=10.0),
    )
    def test_cone_passes_through_generating_point(self, x, y, height):
        apex = np.array([0.0, 0.0, height])
        axis = np.array([1.0, 0.0, 0.0])
        tag = np.array([x, y, 0.5])
        alpha = spatial_angle_rad(tag - apex, axis)
        conic = aoa_cone_conic(apex, axis, alpha, road_z_m=0.5)
        # Scale tolerance with the coefficients' magnitude.
        scale = max(abs(conic.a), abs(conic.c), 1.0) * (x * x + y * y)
        assert abs(conic.evaluate(x, y)) < 1e-7 * scale

    @given(st.floats(min_value=0.05, max_value=np.pi - 0.05))
    def test_aoa_phase_roundtrip(self, alpha):
        d = WAVELENGTH_M / 2.0
        assert aoa_from_phase(phase_from_aoa(alpha, d), d) == pytest.approx(alpha)

    @given(
        st.floats(min_value=0.05, max_value=np.pi - 0.05),
        st.floats(min_value=0.05, max_value=0.45),
    )
    def test_aoa_monotone_in_phase(self, alpha, spacing):
        phase = phase_from_aoa(alpha, spacing)
        smaller = aoa_from_phase(phase + 0.05, spacing)
        larger = aoa_from_phase(phase - 0.05, spacing)
        # cos is decreasing: more phase = smaller angle.
        assert smaller <= alpha + 1e-9
        assert larger >= alpha - 1e-9


class TestTheoryProperties:
    @given(st.integers(min_value=0, max_value=80))
    def test_probability_ordering(self, m):
        naive = p_no_miss_naive(m)
        exact = p_no_miss_exact(m)
        bound = p_no_miss_paper_bound(m)
        assert 0.0 <= naive <= exact <= 1.0
        assert bound <= exact + 1e-12

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=100, max_value=2000))
    def test_more_bins_never_hurt(self, m, n_bins):
        assert p_no_miss_naive(m, n_bins) <= p_no_miss_naive(m, n_bins * 2) + 1e-12


class TestDecodeSessionProperties:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=32), min_size=1, max_size=5
        ),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_air_time_monotone_and_consistent(self, budgets, seed):
        """Air time only ever grows with further decode work, always
        equals queries-issued x period, and the reader's per-measurement
        report stays within its §12.5 payload budget."""
        from repro.channel.antenna import TriangleArray
        from repro.channel.collision import StaticCollisionSimulator
        from repro.channel.noise import thermal_noise_power_w
        from repro.channel.propagation import LosChannel
        from repro.core.decoding import CoherentDecoder, DecodeSession
        from repro.core.counting import CollisionCounter
        from repro.core.reader import ReaderReport
        from tests.conftest import make_tag

        rng = np.random.default_rng(seed)
        cfos = rng.uniform(100e3, 1.1e6, size=2)
        tags = [
            make_tag(cfo, position_m=(rng.uniform(-6, 6), -8.0, 1.0), seed=seed + i)
            for i, cfo in enumerate(cfos)
        ]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator(
            tags,
            array.positions_m,
            LosChannel(),
            noise_power_w=thermal_noise_power_w(FS),
            rng=seed,
        )
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        previous_air = 0.0
        for budget in budgets:
            target = float(cfos[budget % len(cfos)])
            session.decode_target(target, max_queries=budget)
            air = session.total_air_time_s
            assert air >= previous_air  # monotone: captures are never dropped
            assert air == pytest.approx(
                len(session.captures) * decoder.query_period_s
            )
            previous_air = air
        # The queries the session spent decoding do not inflate the
        # measurement upload: a report over the same capture is still the
        # "few kbits" of §12.5 (64 header + 96 bits per accepted spike).
        estimate = CollisionCounter().count(session.readout_capture(0))
        report = ReaderReport(timestamp_s=0.0, count=estimate)
        assert report.payload_bits() == 64 + 96 * len(estimate.observations)
        assert report.payload_bits() < 4000


@pytest.mark.slow
class TestSharedAirProperties:
    """Conservation laws of the corridor's shared medium: every capture
    any station synthesizes — own round, decode burst, or overheard
    window — must be backed by response energy on the one shared
    :class:`~repro.sim.medium.AirLog`, and the response pool's
    corruption bookkeeping must agree with a post-hoc re-check."""

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=4, deadline=None)
    def test_air_time_conservation_and_pool_bookkeeping(self, seed):
        from tests.test_city_corridor import small_corridor

        corridor = small_corridor(
            seed=seed, n_poles=3, n_cars=4, opportunistic="accept"
        )
        result = corridor.run(4.0)

        # Index the shared log's response energy by (trigger, window).
        on_air = set()
        for response in corridor.air.responses():
            on_air.add(
                (response.triggered_by, response.start_s, response.end_s)
            )

        # No station's capture window contains response energy absent
        # from the shared log: published trigger windows, burst captures
        # and harvested overheard windows all map onto recorded
        # transmissions with matching provenance and extent.
        for window in corridor.pool.windows:
            assert (window.origin, window.start_s, window.end_s) in on_air
        for station, _, start_s, end_s, _ in corridor._burst_log:
            assert (station, start_s, end_s) in on_air
        for _, origin, _, start_s, end_s, _ in corridor._overheard_log:
            assert (origin, start_s, end_s) in on_air

        # Under CSMA the street stays clean, so the pool's harvest-time
        # corruption verdicts must agree with the exact post-hoc
        # re-check against the final log (and with the burst capture
        # accounting's synthesis-time verdicts).
        assert result.corrupted_responses == 0
        assert result.overheard_corrupted_at_harvest == 0
        assert result.overheard_corrupted_posthoc == 0
        assert result.burst_corruption_undercount == 0
        # Every donated capture is counted exactly once.
        assert result.overheard_donated == (
            result.overheard_harvested - result.overheard_corrupted_at_harvest
        )


class TestHardwareProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=64))
    def test_quantization_idempotent(self, values):
        adc = ADC(n_bits=10, full_scale=2000.0)
        samples = np.array(values, dtype=complex)
        once = adc.quantize(samples)
        twice = adc.quantize(once)
        assert np.allclose(once, twice)

    @given(
        st.floats(min_value=1e-4, max_value=0.5),
        st.floats(min_value=0.6, max_value=10.0),
    )
    def test_average_power_between_extremes(self, active_s, period_s):
        duty = DutyCycle(active_s=min(active_s, period_s), period_s=period_s)
        model = PowerModel()
        average = model.average_power_w(duty)
        assert model.sleep_power_w <= average <= model.active_power_w

    @given(
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=25)
    def test_energy_additivity(self, t1, t2):
        duty = DutyCycle(active_s=10e-3, period_s=1.0)
        model = PowerModel()
        # Closed-form average power implies additive energy.
        e_sum = model.average_power_w(duty) * (t1 + t2)
        e_parts = model.average_power_w(duty) * t1 + model.average_power_w(duty) * t2
        assert e_sum == pytest.approx(e_parts)
