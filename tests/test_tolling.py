"""Unit and integration tests for repro.apps.tolling (the billing plane)."""

import json

import pytest

from repro.apps.tolling import (
    DirectoryBackend,
    ShardedAccountStore,
    TollDedup,
    TollEvent,
    TollRead,
    TollingService,
    synthetic_reads,
)
from repro.errors import ConfigurationError
from repro.sim.city import IdentityDirectory, downtown_grid
from repro.sim.city.parallel import run_sharded


def read(t_s, tag_id=7, zone="edge-0", kind="own", n_queries=0, cfo_hz=None,
         delivered_s=None):
    return TollRead(
        t_s=t_s,
        zone=zone,
        station=f"{zone}/pole-0",
        tag_id=tag_id,
        cfo_hz=200.0 * tag_id if cfo_hz is None else cfo_hz,
        kind=kind,
        n_queries=n_queries,
        delivered_s=delivered_s,
    )


class TestDedupWindow:
    def test_duplicates_collapse_to_one_event(self):
        dedup = TollDedup(window_s=5.0)
        assert dedup.admit(7, "edge-0", 10.0)
        for t in (10.5, 11.0, 14.9):
            assert not dedup.admit(7, "edge-0", t)
        assert dedup.events == 1
        assert dedup.duplicates == 3

    def test_other_tag_and_other_zone_are_their_own_events(self):
        dedup = TollDedup(window_s=5.0)
        assert dedup.admit(7, "edge-0", 10.0)
        assert dedup.admit(8, "edge-0", 10.0)
        assert dedup.admit(7, "edge-1", 10.0)
        assert dedup.events == 3

    def test_next_window_is_a_new_crossing(self):
        dedup = TollDedup(window_s=5.0)
        assert dedup.admit(7, "edge-0", 14.9)
        assert dedup.admit(7, "edge-0", 15.1)  # next bin: circled back
        assert dedup.events == 2

    def test_table_is_bounded_by_concurrent_crossings(self):
        dedup = TollDedup(window_s=5.0)
        for k in range(1000):
            dedup.admit(k, "edge-0", float(k))
        # 1000 crossings have streamed through, but only the last
        # window-and-change of them can still receive duplicates.
        assert len(dedup) < 20
        assert dedup.peak_entries < 20
        assert dedup.events == 1000

    def test_reads_far_behind_the_watermark_are_rejected(self):
        dedup = TollDedup(window_s=5.0)
        dedup.admit(7, "edge-0", 100.0)
        with pytest.raises(ConfigurationError):
            dedup.admit(8, "edge-0", 90.0)

    def test_zero_window_rejected(self):
        with pytest.raises(ConfigurationError):
            TollDedup(window_s=0.0)


class TestDedupProperty:
    """The satellite property: N mixed-provenance duplicate reads of one
    crossing yield exactly one toll event inside the window and exactly
    two straddling the boundary — deterministically, per seed."""

    @pytest.mark.parametrize("seed", [3, 17])
    def test_n_duplicate_reads_one_event(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        service = TollingService(policy="as-sighted", window_s=5.0)
        kinds = ["own", "push", "handoff", "decode", "redecode"]
        # One crossing: first read at the window's start, N-1 duplicates
        # of mixed provenance spread inside the same window bin.
        t0 = 10.0
        n = int(rng.integers(3, 12))
        offsets = np.sort(rng.uniform(0.0, 4.9, size=n - 1))
        service.ingest(read(t0, kind="decode", n_queries=8))
        for dt in offsets:
            kind = kinds[int(rng.integers(0, len(kinds)))]
            service.ingest(
                read(t0 + float(dt), kind=kind, n_queries=6 if "decode" in kind else 0)
            )
        assert service.dedup.events == 1
        assert service.dedup.duplicates == n - 1
        assert service.charged == 1
        if service.keep_events:
            assert service.events[0].n_reads == n

    @pytest.mark.parametrize("seed", [3, 17])
    def test_boundary_straddle_two_events(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        service = TollingService(policy="as-sighted", window_s=5.0)
        # Reads straddle the t=15 bin boundary: some in [13, 15), some
        # in [15, 17) — one crossing on the road, two dedup windows.
        before = 13.0 + rng.uniform(0.0, 2.0, size=4)
        after = 15.0 + rng.uniform(0.0, 2.0, size=3)
        for t in sorted([*before, *after]):
            service.ingest(read(float(t)))
        assert service.dedup.events == 2
        assert service.charged == 2

    def test_deterministic_under_repeated_seed(self):
        def run(seed):
            service = TollingService(policy="as-sighted", window_s=5.0)
            for r in synthetic_reads(500, 800, rng=seed):
                service.ingest(r)
            return json.dumps(service.finish(), sort_keys=True)

        assert run(5) == run(5)
        assert run(9) == run(9)
        assert run(5) != run(9)  # the seed actually matters


class TestAccountStore:
    def test_charges_accumulate(self):
        store = ShardedAccountStore(n_shards=4)
        assert store.charge(7, 150, 1.0) == 150
        assert store.charge(7, 150, 2.0) == 300
        assert store.balance_cents(7) == 300
        assert store.total_charged_cents == 300

    def test_eviction_settles_exactly(self):
        store = ShardedAccountStore(n_shards=1, max_active_per_shard=10)
        for account in range(25):
            store.charge(account, 150, float(account))
        store.check_consistent()
        assert store.active_rows <= 10
        assert store.evictions > 0
        assert store.total_charged_cents == 25 * 150
        # Settled accounts re-open fresh rows on their next charge.
        assert store.balance_cents(0) is None
        store.charge(0, 150, 30.0)
        assert store.balance_cents(0) == 150
        store.check_consistent()

    def test_settling_drops_the_coldest(self):
        store = ShardedAccountStore(n_shards=1, max_active_per_shard=4)
        for account, t in ((1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)):
            store.charge(account, 100, t)
        store.charge(5, 100, 50.0)  # overflows: settles the two coldest
        assert store.balance_cents(1) is None
        assert store.balance_cents(2) is None
        assert store.balance_cents(4) == 100
        store.check_consistent()

    def test_peak_active_tracks_high_water(self):
        store = ShardedAccountStore(n_shards=1, max_active_per_shard=100)
        for account in range(50):
            store.charge(account, 1, 0.0)
        assert store.peak_active == 50

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedAccountStore().charge(1, -5, 0.0)


class TestBackend:
    def make_directory(self):
        directory = IdentityDirectory(tolerance_hz=50.0, max_age_s=1e6)
        directory.report(7, 1400.0, "s", "z", 0.0, 0.0)
        return directory

    def test_answer_arrives_k_rounds_later(self):
        backend = DirectoryBackend(
            self.make_directory(), latency_rounds=5, round_s=1e-3
        )
        backend.submit(1400.0, 10.0, token="q")
        assert backend.drain(10.004) == []  # not ready yet
        answers = backend.drain(10.005)
        assert len(answers) == 1
        assert answers[0].account_id == 7
        assert answers[0].ready_s == pytest.approx(10.005)
        assert answers[0].token == "q"

    def test_answers_reflect_delivery_time_state(self):
        """The directory is consulted when the answer ships, not when
        the question was asked — a fingerprint that expires in flight
        resolves to nothing."""
        directory = IdentityDirectory(tolerance_hz=50.0, max_age_s=10.0)
        directory.report(7, 1400.0, "s", "z", 0.0, 0.0)
        backend = DirectoryBackend(directory, latency_rounds=1, round_s=15.0)
        backend.submit(1400.0, 1.0)  # ready at 16.0; entry expires at 10.0
        answers = backend.drain(16.0)
        assert answers[0].account_id is None

    def test_flush_delivers_everything(self):
        backend = DirectoryBackend(self.make_directory(), latency_rounds=3)
        backend.submit(1400.0, 1.0)
        backend.submit(1400.0, 2.0)
        assert backend.pending == 2
        assert len(backend.flush()) == 2
        assert backend.pending == 0


class TestTollingPolicies:
    def seeded_backend(self, n_accounts=10, latency_rounds=5):
        directory = IdentityDirectory(
            tolerance_hz=50.0, max_entries=n_accounts, max_age_s=1e9
        )
        for account in range(n_accounts):
            directory.report(account, 200.0 * account, "seed", "seed", 0.0, 0.0)
        return DirectoryBackend(directory, latency_rounds=latency_rounds)

    def test_push_charges_instantly_for_free(self):
        service = TollingService(policy="push")
        event = service.ingest(read(10.0, kind="push"))
        assert event.status == "charged"
        assert event.latency_s == 0.0
        assert event.air_queries == 0
        assert service.accounts.balance_cents(7) == 150

    def test_pull_charges_k_rounds_later(self):
        backend = self.seeded_backend(latency_rounds=5)
        service = TollingService(policy="pull", backend=backend)
        event = service.ingest(read(10.0, tag_id=3))
        assert event.status == "pending"
        assert service.pending == 1
        service.advance(10.006)
        assert event.status == "charged"
        assert event.latency_s == pytest.approx(0.005)
        assert event.air_queries == 0
        assert service.accounts.balance_cents(3) == 150

    def test_pull_miss_falls_back_to_decode_and_reports(self):
        directory = IdentityDirectory(tolerance_hz=50.0, max_age_s=1e9)
        backend = DirectoryBackend(directory, latency_rounds=5)
        service = TollingService(
            policy="pull", backend=backend, fallback_decode_queries=8, window_s=2.0
        )
        event = service.ingest(read(10.0, tag_id=3))
        service.advance(11.0)
        assert event.status == "charged"
        assert event.air_queries == 8
        assert event.latency_s == pytest.approx(0.005 + 8 * 1e-3)
        assert service.pull_fallbacks == 1
        # The recovery was reported: the same car's next crossing pulls.
        assert 3 in directory
        event2 = service.ingest(read(20.0, tag_id=3))
        service.advance(21.0)
        assert event2.air_queries == 0
        assert service.pull_fallbacks == 1

    def test_pull_without_fallback_leaves_unresolved(self):
        directory = IdentityDirectory(tolerance_hz=50.0, max_age_s=1e9)
        backend = DirectoryBackend(directory, latency_rounds=1)
        service = TollingService(
            policy="pull", backend=backend, fallback_decode_queries=0
        )
        service.ingest(read(10.0, tag_id=3))
        service.advance(11.0)
        assert service.unresolved == 1
        assert service.charged == 0
        service.check_consistent()

    def test_misattribution_is_counted(self):
        """A stale directory mapping bills the wrong account — the
        billing plane cannot know better, but it must count it."""
        directory = IdentityDirectory(tolerance_hz=50.0, max_age_s=1e9)
        directory.report(99, 600.0, "s", "z", 0.0, 0.0)  # 99 owns tag 3's cfo
        backend = DirectoryBackend(directory, latency_rounds=1)
        service = TollingService(policy="pull", backend=backend)
        service.ingest(read(10.0, tag_id=3, cfo_hz=600.0))
        service.advance(11.0)
        assert service.misattributed == 1
        assert service.accounts.balance_cents(99) == 150
        assert service.accounts.balance_cents(3) is None

    def test_redecode_always_burns_a_burst(self):
        service = TollingService(policy="redecode", fallback_decode_queries=12)
        event = service.ingest(read(10.0, kind="own"))  # free read, paid policy
        assert event.air_queries == 12
        assert event.latency_s == pytest.approx(12e-3)

    def test_as_sighted_prices_each_read_at_cost(self):
        service = TollingService(policy="as-sighted", window_s=2.0)
        free = service.ingest(read(10.0, kind="handoff"))
        paid = service.ingest(read(20.0, kind="decode", n_queries=9))
        assert free.air_queries == 0
        assert paid.air_queries == 9
        assert paid.latency_s == pytest.approx(9e-3)

    def test_policy_curve_ordering(self):
        """The architectural claim, measured: push <= pull <= redecode
        on latency and on air time, over one identical stream."""
        streams = lambda: synthetic_reads(200, 400, rng=13)  # noqa: E731
        results = {}
        for policy in ("push", "pull", "redecode"):
            backend = self.seeded_backend(200) if policy == "pull" else None
            service = TollingService(policy=policy, backend=backend)
            for r in streams():
                service.ingest(r)
            results[policy] = service.finish()
            service.check_consistent()
        latency = [results[p]["mean_latency_s"] for p in ("push", "pull", "redecode")]
        air = [results[p]["air_queries_total"] for p in ("push", "pull", "redecode")]
        assert latency[0] <= latency[1] <= latency[2]
        assert air[0] <= air[1] <= air[2]
        # Same stream, same toll events, whatever the policy.
        assert len({results[p]["toll_events"] for p in results}) == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TollingService(policy="fee-only")
        with pytest.raises(ConfigurationError):
            TollingService(policy="pull")  # no backend
        with pytest.raises(ConfigurationError):
            TollingService(toll_cents=-1)

    def test_obs_hook_mirrors_billing(self):
        from repro.obs import Obs

        obs = Obs()
        service = TollingService(policy="push", obs=obs)
        service.ingest(read(10.0))
        service.ingest(read(10.5))
        counters = obs.metrics.snapshot()["counters"]
        assert any(key.startswith("tolling.read") for key in counters)
        assert any(key.startswith("tolling.charge") for key in counters)
        assert any(key.startswith("tolling.event") for key in counters)


class TestMeshIntegration:
    def build(self, rng=7):
        return downtown_grid(2, 2, rng=rng, rate_per_s=0.5)

    def test_serial_mesh_tap_bills_crossings(self):
        mesh = self.build()
        service = mesh.add_sighting_tap(
            TollingService(policy="as-sighted", window_s=5.0)
        )
        mesh.run(8.0)
        summary = service.finish()
        service.check_consistent()
        assert summary["reads"] > 0
        # Every tap read is a directory report too: same stream.
        assert summary["reads"] == mesh.directory.reports

    def test_sharded_tap_is_worker_count_invariant(self):
        """Billing over the coordinator-replayed stream must not depend
        on how the mesh was sharded. (Serial and sharded radio streams
        legitimately differ — per-edge RNG scoping — so the serial run
        is checked for liveness, not equality.)"""
        sharded = []
        for workers, in_process in ((1, True), (2, False), (2, True)):
            service = TollingService(policy="as-sighted", window_s=5.0)
            mesh = self.build()
            mesh.add_sighting_tap(service)
            run_sharded(mesh, 8.0, workers=workers, in_process=in_process)
            service.check_consistent()
            sharded.append(json.dumps(service.finish(), sort_keys=True))
        assert sharded[0] == sharded[1] == sharded[2]
        assert json.loads(sharded[0])["charged"] > 0

    def test_sharded_rejects_services_but_not_taps(self):
        mesh = self.build()
        mesh.subscribe(object())
        with pytest.raises(ConfigurationError):
            run_sharded(mesh, 1.0, workers=1, in_process=True)


class TestSyntheticReplay:
    def test_stream_is_time_ordered_and_seed_stable(self):
        reads_a = list(synthetic_reads(100, 200, rng=3))
        reads_b = list(synthetic_reads(100, 200, rng=3))
        assert reads_a == reads_b
        times = [r.t_s for r in reads_a]
        assert times == sorted(times)
        assert all(0 <= r.tag_id < 100 for r in reads_a)

    def test_cache_hit_reads_carry_no_queries(self):
        for r in synthetic_reads(50, 100, rng=5):
            if r.kind in ("decode", "redecode"):
                assert r.n_queries > 0
            else:
                assert r.n_queries == 0

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            list(synthetic_reads(0, 10))
        with pytest.raises(ConfigurationError):
            list(synthetic_reads(10, 10, reads_per_crossing=0))


class TestTollEventRecord:
    def test_event_defaults_pending(self):
        event = TollEvent(tag_id=1, zone="z", window_index=2, first_read_s=10.0, kind="own")
        assert event.status == "pending"
        assert event.charged_s is None


class TestDedupEmitVsDelivery:
    """The latent-bug regression (PR 10): behind-watermark rejection
    must key on *delivery* lag, not emit time. Pre-backhaul the two were
    conflated, so a legitimately late delivery of an on-time crossing —
    routine on a batched link — was rejected as out of order."""

    def test_late_delivery_of_on_time_emit_is_admitted(self):
        # Failing pre-PR: the watermark jumped to the *emit* time of the
        # freshest read, so an older-emitted read arriving later (a
        # batch flushed after an outage) raised instead of billing.
        dedup = TollDedup(window_s=5.0, max_lag_s=30.0)
        assert dedup.admit(7, "edge-0", 40.0, delivered_s=41.0)
        # Emitted a window earlier, held back by the backhaul, delivered
        # after the fresher read: a real crossing — exactly one event.
        assert dedup.admit(8, "edge-0", 12.0, delivered_s=42.0)
        assert not dedup.admit(8, "edge-0", 12.5, delivered_s=43.0)
        assert dedup.events == 2
        assert dedup.duplicates == 1

    def test_reordered_redelivery_cannot_double_charge(self):
        dedup = TollDedup(window_s=5.0, max_lag_s=30.0)
        assert dedup.admit(7, "edge-0", 10.0, delivered_s=11.0)  # window 2
        assert dedup.admit(7, "edge-0", 15.0, delivered_s=16.0)  # window 3
        # A straggler from window 2 delivered after window 3 opened must
        # fold into the *old* window, never open a second event for it.
        assert not dedup.admit(7, "edge-0", 11.0, delivered_s=20.0)
        assert dedup.events == 2
        assert dedup.duplicates == 1

    def test_delivery_before_emission_raises(self):
        dedup = TollDedup(window_s=5.0, max_lag_s=30.0)
        with pytest.raises(ConfigurationError):
            dedup.admit(7, "edge-0", 10.0, delivered_s=9.0)

    def test_emit_beyond_the_lag_allowance_rejected_loudly(self):
        dedup = TollDedup(window_s=5.0, max_lag_s=10.0)
        dedup.admit(7, "edge-0", 100.0, delivered_s=100.0)
        with pytest.raises(ConfigurationError, match="max_lag_s"):
            dedup.admit(8, "edge-0", 80.0, delivered_s=101.0)

    def test_wired_behavior_unchanged_by_default(self):
        # max_lag_s defaults to 0: identical semantics to the pre-PR
        # single-argument admit on an ordered stream.
        dedup = TollDedup(window_s=5.0)
        assert dedup.admit(7, "edge-0", 10.0)
        assert not dedup.admit(7, "edge-0", 11.0)
        with pytest.raises(ConfigurationError):
            dedup.admit(8, "edge-0", 1.0)

    def test_service_bills_backhaul_lag_as_latency(self):
        service = TollingService(policy="push", max_lag_s=60.0)
        service.ingest(read(10.0, delivered_s=13.5))
        assert service.charged == 1
        assert service.latency_max_s == pytest.approx(3.5)
        if service.keep_events:
            assert service.events[0].latency_s == pytest.approx(3.5)
            assert service.events[0].charged_s == pytest.approx(13.5)

    def test_service_sweep_honors_the_lag_allowance(self):
        # With a lag allowance the recent-event table must keep events
        # foldable for window_s + max_lag_s, not sweep them at window_s.
        service = TollingService(policy="as-sighted", max_lag_s=20.0)
        service.ingest(read(10.0, delivered_s=10.0))
        service.ingest(read(31.0, tag_id=9, delivered_s=31.0))
        service.ingest(read(12.0, delivered_s=32.0))  # straggler duplicate
        assert service.dedup.events == 2
        assert service.events[0].n_reads == 2
