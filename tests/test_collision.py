"""Unit tests for repro.channel.collision."""

import numpy as np
import pytest

from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator, synthesize_collision
from repro.channel.propagation import LosChannel
from repro.constants import (
    QUERY_DURATION_S,
    READER_LO_HZ,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from repro.errors import ConfigurationError
from tests.conftest import make_tag


@pytest.fixture
def array():
    return TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))


class TestSynthesizeCollision:
    def test_antenna_count(self, array):
        tag = make_tag(300e3)
        collision = synthesize_collision(
            [tag.respond(0.0)], array.positions_m, LosChannel()
        )
        assert collision.n_antennas == 3

    def test_capture_window(self, array):
        tag = make_tag(300e3)
        response = tag.respond(0.0)
        collision = synthesize_collision([response], array.positions_m, LosChannel())
        assert collision.t0_s == pytest.approx(response.t0_s)
        assert collision.antenna(0).duration_s == pytest.approx(RESPONSE_DURATION_S)

    def test_truth_channel_reproduces_signal(self, array):
        """antenna capture == truth_channel * pre-channel baseband."""
        tag = make_tag(250e3, seed=3)
        response = tag.respond(0.0)
        collision = synthesize_collision(
            [response], array.positions_m, LosChannel(), noise_power_w=0.0
        )
        expected = response.baseband_at_lo(READER_LO_HZ).samples * collision.truth[0].channels[0]
        assert np.allclose(collision.antenna(0).samples, expected)

    def test_superposition_is_linear(self, array):
        tag_a = make_tag(200e3, position_m=(5.0, -4.0, 1.0), seed=1)
        tag_b = make_tag(700e3, position_m=(-8.0, -6.0, 1.0), seed=2)
        ra, rb = tag_a.respond(0.0), tag_b.respond(0.0)
        together = synthesize_collision([ra, rb], array.positions_m, LosChannel())
        alone_a = synthesize_collision([ra], array.positions_m, LosChannel())
        alone_b = synthesize_collision([rb], array.positions_m, LosChannel())
        assert np.allclose(
            together.antenna(0).samples,
            alone_a.antenna(0).samples + alone_b.antenna(0).samples,
        )

    def test_empty_responses_is_noise_only(self, array):
        collision = synthesize_collision(
            [], array.positions_m, LosChannel(), noise_power_w=1e-12, rng=1
        )
        assert collision.antenna(0).power() == pytest.approx(1e-12, rel=0.3)

    def test_true_cfos_sorted(self, array):
        tags = [make_tag(c, seed=i) for i, c in enumerate((900e3, 100e3, 500e3))]
        collision = synthesize_collision(
            [t.respond(0.0) for t in tags], array.positions_m, LosChannel()
        )
        assert np.array_equal(collision.true_cfos_hz(), [100e3, 500e3, 900e3])

    def test_positionless_tag_rejected(self, array):
        tag = make_tag(100e3)
        tag.position_m = None
        with pytest.raises(ConfigurationError):
            synthesize_collision([tag.respond(0.0)], array.positions_m, LosChannel())


class TestStaticCollisionSimulator:
    def test_response_timing(self, array):
        sim = StaticCollisionSimulator([make_tag(300e3)], array.positions_m, LosChannel())
        collision = sim.query(query_start_s=1.0)
        assert collision.t0_s == pytest.approx(1.0 + QUERY_DURATION_S + TURNAROUND_S)

    def test_matches_general_path_statistics(self, array):
        """Fast path and general path must put the peak in the same bin
        with the same magnitude (phases differ by design)."""
        tag = make_tag(420e3, seed=9)
        sim = StaticCollisionSimulator([tag], array.positions_m, LosChannel(), rng=0)
        fast = sim.query(0.0)
        general = synthesize_collision([tag.respond(0.0)], array.positions_m, LosChannel())
        spectrum_fast = np.abs(np.fft.fft(fast.antenna(0).samples))
        spectrum_gen = np.abs(np.fft.fft(general.antenna(0).samples))
        assert np.argmax(spectrum_fast) == np.argmax(spectrum_gen)
        assert spectrum_fast.max() == pytest.approx(spectrum_gen.max(), rel=1e-6)

    def test_phases_rerandomize_per_query(self, array):
        sim = StaticCollisionSimulator([make_tag(300e3)], array.positions_m, LosChannel(), rng=4)
        a = sim.query(0.0)
        b = sim.query(1e-3)
        assert a.truth[0].response.phase0_rad != b.truth[0].response.phase0_rad

    def test_empty_scene(self, array):
        sim = StaticCollisionSimulator([], array.positions_m, LosChannel(), noise_power_w=0.0)
        collision = sim.query(0.0)
        assert collision.antenna(0).power() == 0.0
        assert collision.truth == []

    def test_truth_channels_consistent_with_signal(self, array):
        tag = make_tag(640e3, seed=5)
        sim = StaticCollisionSimulator([tag], array.positions_m, LosChannel(), rng=1)
        collision = sim.query(0.0)
        # Demodulate at the CFO: mean = h * mean(s) = h / 2 (Eq 5).
        wave = collision.antenna(1)
        t = np.arange(wave.n_samples) / wave.sample_rate_hz
        demod = wave.samples * np.exp(-2j * np.pi * 640e3 * t)
        assert demod.mean() == pytest.approx(collision.truth[0].channels[1] / 2.0, rel=1e-6)

    def test_rejects_positionless_tags(self, array):
        tag = make_tag(100e3)
        tag.position_m = None
        with pytest.raises(ConfigurationError):
            StaticCollisionSimulator([tag], array.positions_m, LosChannel())


class TestReceivedCollisionValidation:
    def waves(self, n=2, n_samples=64, rate=4e6):
        from repro.phy.waveform import Waveform

        return [
            Waveform(np.zeros(n_samples, dtype=np.complex128), rate)
            for _ in range(n)
        ]

    def test_empty_antenna_list_rejected(self):
        """An empty collision used to surface as a bare IndexError from
        sample_rate_hz/t0_s; construction must reject it instead."""
        from repro.channel.collision import ReceivedCollision

        with pytest.raises(ConfigurationError):
            ReceivedCollision(antennas=[], lo_hz=READER_LO_HZ)

    def test_mismatched_lengths_rejected(self):
        from repro.channel.collision import ReceivedCollision
        from repro.phy.waveform import Waveform

        waves = self.waves(1) + [Waveform(np.zeros(32, dtype=np.complex128), 4e6)]
        with pytest.raises(ConfigurationError):
            ReceivedCollision(antennas=waves, lo_hz=READER_LO_HZ)

    def test_mismatched_rates_rejected(self):
        from repro.channel.collision import ReceivedCollision
        from repro.phy.waveform import Waveform

        waves = self.waves(1) + [Waveform(np.zeros(64, dtype=np.complex128), 2e6)]
        with pytest.raises(ConfigurationError):
            ReceivedCollision(antennas=waves, lo_hz=READER_LO_HZ)

    def test_valid_collision_accepted(self):
        from repro.channel.collision import ReceivedCollision

        collision = ReceivedCollision(antennas=self.waves(3), lo_hz=READER_LO_HZ)
        assert collision.n_antennas == 3
        assert collision.sample_rate_hz == pytest.approx(4e6)
