"""Unit tests for repro.phy.packet."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import PACKET_BITS
from repro.errors import CrcError, PacketError
from repro.phy.packet import PacketFields, TransponderPacket


class TestFields:
    def test_valid_fields(self):
        fields = PacketFields(agency_id=5, serial_number=123456, tag_type=2, programmable=99)
        assert fields.agency_id == 5

    def test_agency_overflow(self):
        with pytest.raises(PacketError):
            PacketFields(agency_id=128, serial_number=0, tag_type=0, programmable=0)

    def test_serial_overflow(self):
        with pytest.raises(PacketError):
            PacketFields(agency_id=0, serial_number=1 << 32, tag_type=0, programmable=0)

    def test_programmable_is_47_bits(self):
        PacketFields(0, 0, 0, (1 << 47) - 1)  # max fits
        with pytest.raises(PacketError):
            PacketFields(0, 0, 0, 1 << 47)

    def test_negative_rejected(self):
        with pytest.raises(PacketError):
            PacketFields(-1, 0, 0, 0)


class TestSerialization:
    def test_length_is_256(self):
        packet = TransponderPacket.create(1, 2, 3, 4)
        assert packet.to_bits().size == PACKET_BITS

    def test_roundtrip(self):
        packet = TransponderPacket.create(17, 0xDEADBEEF, 9, 12345)
        restored = TransponderPacket.from_bits(packet.to_bits())
        assert restored == packet

    def test_random_roundtrip(self):
        packet = TransponderPacket.random(rng=5)
        assert TransponderPacket.from_bits(packet.to_bits()) == packet

    def test_random_deterministic(self):
        assert TransponderPacket.random(rng=7) == TransponderPacket.random(rng=7)

    def test_tag_id_combines_agency_and_serial(self):
        packet = TransponderPacket.create(agency_id=1, serial_number=2)
        assert packet.tag_id == (1 << 32) | 2

    def test_wrong_length_rejected(self):
        with pytest.raises(PacketError):
            TransponderPacket.from_bits(np.zeros(255, dtype=np.uint8))

    def test_bad_sync_rejected(self):
        bits = TransponderPacket.create(1, 2).to_bits()
        bits[0] ^= 1
        with pytest.raises(PacketError):
            TransponderPacket.from_bits(bits)

    def test_sync_check_can_be_skipped(self):
        bits = TransponderPacket.create(1, 2).to_bits()
        # Flipping a sync bit only - payload CRC still valid.
        bits[0] ^= 1
        packet = TransponderPacket.from_bits(bits, check_sync=False)
        assert packet.fields.agency_id == 1

    def test_payload_corruption_raises_crc(self):
        bits = TransponderPacket.create(1, 2).to_bits()
        bits[40] ^= 1  # inside the serial number
        with pytest.raises(CrcError):
            TransponderPacket.from_bits(bits)

    def test_crc_corruption_raises(self):
        bits = TransponderPacket.create(1, 2).to_bits()
        bits[-1] ^= 1
        with pytest.raises(CrcError):
            TransponderPacket.from_bits(bits)

    def test_factory_field_tied_to_serial(self):
        """Two packets with different serials must differ in the factory
        field (it is a PRBS of the serial)."""
        a = TransponderPacket.create(1, 100).to_bits()
        b = TransponderPacket.create(1, 101).to_bits()
        factory_a = a[110:240]
        factory_b = b[110:240]
        assert not np.array_equal(factory_a, factory_b)

    @given(
        st.integers(min_value=0, max_value=(1 << 7) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 8) - 1),
        st.integers(min_value=0, max_value=(1 << 47) - 1),
    )
    def test_roundtrip_property(self, agency, serial, tag_type, programmable):
        packet = TransponderPacket.create(agency, serial, tag_type, programmable)
        assert TransponderPacket.from_bits(packet.to_bits()) == packet


class TestEquality:
    def test_equal_packets_hash_equal(self):
        a = TransponderPacket.create(1, 2, 3, 4)
        b = TransponderPacket.create(1, 2, 3, 4)
        assert a == b and hash(a) == hash(b)

    def test_unequal_packets(self):
        assert TransponderPacket.create(1, 2) != TransponderPacket.create(1, 3)

    def test_repr_mentions_fields(self):
        assert "serial=2" in repr(TransponderPacket.create(1, 2))
