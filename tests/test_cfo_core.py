"""Unit tests for repro.core.cfo."""

import numpy as np
import pytest

from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.propagation import LosChannel
from repro.core.cfo import estimate_channel, extract_cfo_peaks, refine_frequency
from repro.errors import SpectrumError
from repro.phy.waveform import Waveform
from tests.conftest import make_tag

FS = 4e6


class TestRefineFrequency:
    def test_on_grid_tone(self):
        wave = Waveform.tone(400e3, 512e-6, FS)
        assert refine_frequency(wave, 400e3 + 500, span_hz=977.0) == pytest.approx(
            400e3, abs=20.0
        )

    def test_off_grid_tone(self):
        freq = 517_321.0
        wave = Waveform.tone(freq, 512e-6, FS)
        start = freq + 800.0
        assert refine_frequency(wave, start, span_hz=977.0) == pytest.approx(freq, abs=20.0)

    def test_with_noise(self):
        rng = np.random.default_rng(0)
        freq = 612_345.0
        wave = Waveform.tone(freq, 512e-6, FS, amplitude=1.0)
        noisy = Waveform(wave.samples + 0.05 * rng.normal(size=2048), FS)
        assert refine_frequency(noisy, freq + 700, span_hz=977.0) == pytest.approx(
            freq, abs=100.0
        )

    def test_bad_span_rejected(self):
        with pytest.raises(SpectrumError):
            refine_frequency(Waveform.silence(1e-4, FS), 1e3, span_hz=0.0)


class TestEstimateChannel:
    def test_recovers_applied_channel(self):
        """2 * R(cfo) = h exactly, per Eq 5."""
        tag = make_tag(444e3, seed=4)
        response = tag.respond(0.0)
        h = 2.2e-4 * np.exp(1j * 0.7)
        wave = response.baseband_at_lo(response.carrier_hz - 444e3).scaled(h)
        estimate = estimate_channel(wave, 444e3)
        # The estimate includes the response's own random phase.
        expected = h * np.exp(1j * response.phase0_rad)
        assert estimate == pytest.approx(expected, rel=0.02)

    def test_phase_consistency_across_antennas(self):
        """The AoA primitive: channel ratio across antennas must match the
        true channel ratio (random tag phase cancels)."""
        tag = make_tag(350e3, position_m=(12.0, -6.0, 1.0), seed=5)
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator([tag], array.positions_m, LosChannel(), rng=1)
        collision = sim.query(0.0)
        h0 = estimate_channel(collision.antenna(0), 350e3)
        h1 = estimate_channel(collision.antenna(1), 350e3)
        truth = collision.truth[0].channels
        assert h1 / h0 == pytest.approx(truth[1] / truth[0], rel=1e-3)


class TestExtractCfoPeaks:
    def test_five_tags(self):
        cfos = [150e3, 390e3, 610e3, 840e3, 1080e3]
        tags = [make_tag(c, position_m=(3.0 + 3 * i, -6.0, 1.0), seed=i) for i, c in enumerate(cfos)]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator(tags, array.positions_m, LosChannel(), noise_power_w=1e-13, rng=2)
        peaks = extract_cfo_peaks(sim.query(0.0).antenna(0), min_snr_db=15)
        assert len(peaks) == 5
        for peak, cfo in zip(peaks, cfos):
            assert peak.cfo_hz == pytest.approx(cfo, abs=300.0)

    def test_channels_match_truth(self):
        """Magnitude matches truth exactly; the fast simulator's relative
        time base adds one constant phase per tag, so phases are compared
        through the antenna *ratio* (which every algorithm uses)."""
        tag = make_tag(777e3, seed=7)
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator([tag], array.positions_m, LosChannel(), rng=3)
        collision = sim.query(0.0)
        peaks = extract_cfo_peaks(collision.antenna(0), min_snr_db=15)
        assert len(peaks) == 1
        assert abs(peaks[0].channel) == pytest.approx(
            abs(collision.truth[0].channels[0]), rel=0.05
        )
        h1 = estimate_channel(collision.antenna(1), peaks[0].cfo_hz)
        ratio = h1 / peaks[0].channel
        truth_ratio = collision.truth[0].channels[1] / collision.truth[0].channels[0]
        assert ratio == pytest.approx(truth_ratio, rel=0.02)

    def test_sorted_by_frequency(self):
        tags = [make_tag(c, seed=i) for i, c in enumerate((900e3, 100e3))]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator(tags, array.positions_m, LosChannel(), rng=4)
        peaks = extract_cfo_peaks(sim.query(0.0).antenna(0), min_snr_db=15)
        cfos = [p.cfo_hz for p in peaks]
        assert cfos == sorted(cfos)

    def test_refine_can_be_disabled(self):
        tag = make_tag(502e3, seed=8)
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        sim = StaticCollisionSimulator([tag], array.positions_m, LosChannel(), rng=5)
        peaks = extract_cfo_peaks(sim.query(0.0).antenna(0), min_snr_db=15, refine=False)
        assert len(peaks) == 1
