"""The intermittent backhaul: links, fault plans, golden pins, conservation.

The contract under test (see ``src/repro/sim/city/backhaul.py``):

* ``backhaul="wired"`` is a bit-for-bit pass-through — serial and
  sharded summaries are identical to a mesh without the parameter, and
  the pre-backhaul serial golden sha still reproduces;
* batched policies are lossless after the final convergence flush —
  every submitted sighting delta is applied exactly once, whatever the
  fault plan injected;
* identical ``FaultPlan`` + seed => byte-identical summaries across two
  runs and across 1/2 workers (``scheduled`` mode is worker-count
  invariant exactly like wired);
* billing over batched links conserves charges: every crossing billed
  exactly once after the flush, cents exact
  (``ShardedAccountStore.check_consistent``).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.apps.tolling import TollingService
from repro.errors import ConfigurationError
from repro.sim.city import (
    BackhaulConfig,
    BackhaulPlane,
    FaultPlan,
    IdentityDirectory,
    OutageWindow,
    downtown_grid,
    run_sharded,
)
from repro.utils import as_rng

from tests.test_city_mesh import chain_mesh
from tests.test_city_parallel import SERIAL_GOLDEN_SHA256, summary_json


class Recorder:
    """A sighting tap that records every call (args + keywords)."""

    def __init__(self):
        self.calls = []

    def __call__(self, *args, **kwargs):
        self.calls.append((args, kwargs))

    @property
    def delivered(self):
        return [kw.get("delivered_s") for _, kw in self.calls]


class StubDirectory:
    """A directory that always returns a speed estimate, so the plane's
    push path fires on the very first delta."""

    def __init__(self, estimate=12.0):
        self.estimate = estimate
        self.reports = 0

    def report(self, *args, **kwargs):
        self.reports += 1
        return self.estimate

    def apply_delta(self, *args, **kwargs):
        return self.report(*args, **kwargs)


def make_plane(config, *, stations=("s0",), gateways=(), taps=(), directory=None,
               **kwargs):
    return BackhaulPlane(
        config,
        directory=IdentityDirectory() if directory is None else directory,
        taps=list(taps),
        stations=list(stations),
        gateways=gateways,
        **kwargs,
    )


class TestFaultPlan:
    def test_seeded_plans_are_identical(self):
        kwargs = dict(
            duration_s=30.0, links=("a", "b"), n_outages=3, outage_s=2.0,
            drop_p=0.25, max_delay_s=1.5,
        )
        p1 = FaultPlan.seeded(42, **kwargs)
        p2 = FaultPlan.seeded(42, **kwargs)
        assert p1.outages == p2.outages
        assert [p1.sample("a") for _ in range(32)] == [
            p2.sample("a") for _ in range(32)
        ]

    def test_sample_always_draws_both_values(self):
        # The draw stream stays aligned whatever the drop outcome, so
        # drop_p=1 and drop_p=0 plans with one rng consume identically.
        plan = FaultPlan(drop_p=1.0, delay_range_s=(0.5, 0.5), rng=3)
        dropped, delay_s = plan.sample("s0")
        assert dropped is True
        assert delay_s == 0.5

    def test_outage_windows_cover_their_link_only(self):
        plan = FaultPlan(outages=[OutageWindow(1.0, 2.0, "a")])
        assert plan.outage_covers("a", 1.5)
        assert not plan.outage_covers("b", 1.5)
        assert not plan.outage_covers("a", 2.0)
        everywhere = FaultPlan(outages=[OutageWindow(1.0, 2.0, None)])
        assert everywhere.outage_covers("b", 1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_p=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_range_s=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            FaultPlan(outages=[OutageWindow(3.0, 1.0)])


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            BackhaulConfig(policy="carrier-pigeon")

    def test_bad_periods_rejected(self):
        with pytest.raises(ConfigurationError):
            BackhaulConfig(sync_period_s=0.0)
        with pytest.raises(ConfigurationError):
            BackhaulConfig(retry_backoff_s=1.0, max_backoff_s=0.5)
        with pytest.raises(ConfigurationError):
            BackhaulConfig(heartbeat_s=-1.0)

    def test_mule_needs_a_gateway(self):
        with pytest.raises(ConfigurationError):
            make_plane(BackhaulConfig(policy="mule"), stations=("s0", "s1"))

    def test_unknown_gateway_rejected(self):
        with pytest.raises(ConfigurationError):
            make_plane(
                BackhaulConfig(policy="mule"),
                stations=("s0",),
                gateways=("nowhere",),
            )


class TestScheduledDelivery:
    def test_deltas_apply_at_the_sync_time_not_submission(self):
        tap = Recorder()
        plane = make_plane(
            BackhaulConfig(policy="scheduled", sync_period_s=2.0), taps=[tap]
        )
        assert plane.submit(0.5, "Z", "s0", 7, 50e3, 10.0, True) is None
        assert tap.calls == []  # buffered, not applied
        plane.advance(4.0)
        assert tap.delivered == [2.0]  # the link's first scheduled flush
        assert plane.directory.reports == 1
        assert plane.items_delivered == 1

    def test_wired_taps_get_no_delivered_keyword(self):
        tap = Recorder()
        plane = make_plane(BackhaulConfig(policy="wired"), taps=[tap])
        plane.submit(0.5, "Z", "s0", 7, 50e3, 10.0, True)
        assert len(tap.calls) == 1
        assert tap.calls[0][1] == {}

    def test_outage_forces_retry_with_backoff(self):
        cfg = BackhaulConfig(
            policy="scheduled",
            sync_period_s=1.0,
            retry_backoff_s=0.25,
            fault_plan=FaultPlan(outages=[OutageWindow(0.0, 3.0, "s0")], rng=1),
        )
        tap = Recorder()
        plane = make_plane(cfg, taps=[tap])
        plane.submit(0.5, "Z", "s0", 7, 50e3, 10.0, True)
        plane.advance(10.0)
        assert plane.batches_retried > 0
        assert len(tap.calls) == 1
        assert tap.delivered[0] >= 3.0  # nothing got through the outage
        plane.final_flush(10.0)
        plane.check_consistent()

    def test_final_flush_delivers_leftovers_at_end(self):
        tap = Recorder()
        plane = make_plane(
            BackhaulConfig(policy="scheduled", sync_period_s=100.0), taps=[tap]
        )
        plane.submit(1.0, "Z", "s0", 7, 50e3, 10.0, True)
        plane.final_flush(6.0)
        assert tap.delivered == [6.0]
        assert plane.final_flush_items == 1
        plane.check_consistent()

    def test_push_intents_ride_the_target_downlink(self):
        # A delivered delta triggers a push for target s1; the intent
        # waits on s1's downlink and reaches it at s1's next sync.
        # Staggered schedule: s0 first syncs at 2.0, s1 at 3.0.
        delivered = []
        plane = make_plane(
            BackhaulConfig(policy="scheduled", sync_period_s=2.0),
            stations=("s0", "s1"),
            directory=StubDirectory(),
            push_intent=lambda *a: ("s1", "s0", 7, 50e3, a[5], a[5] + 1.0),
            deliver_push=lambda intent, now_s: delivered.append((intent, now_s)),
        )
        plane.submit(0.5, "Z", "s0", 7, 50e3, 10.0, True)
        plane.advance(10.0)
        assert plane.pushes_sent == 1
        assert plane.pushes_delivered == 1
        assert delivered and delivered[0][0][0] == "s1"
        assert delivered[0][1] == 3.0  # s1's next flush after the t=2 uplink


class TestMuleDelivery:
    def test_cars_carry_deltas_to_the_gateway(self):
        tap = Recorder()
        plane = make_plane(
            BackhaulConfig(policy="mule"),
            stations=("p0", "g"),
            gateways=("g",),
            taps=[tap],
        )
        plane.submit(1.0, "Z", "p0", 1, 50e3, 10.0, True)  # tag 1 buffers at p0
        plane.submit(2.0, "Z", "p0", 2, 51e3, 10.0, True)  # tag 2 picks it up
        assert plane.mule_pickups == 1
        assert tap.calls == []  # still riding the car
        plane.submit(3.0, "Z", "g", 2, 51e3, 50.0, True)  # tag 2 hits the gateway
        plane.advance(3.0)
        # tag 1's read (satcheled) and tag 2's two reads minus the one
        # still waiting at p0 for the next car:
        assert plane.mule_deliveries == 1
        assert sorted(tap.delivered) == [3.0, 3.0]
        plane.final_flush(5.0)
        assert len(tap.calls) == 3  # p0's leftover read flushed
        plane.check_consistent()


class TestWiredGoldenPin:
    @pytest.mark.slow
    def test_wired_serial_reproduces_the_pre_backhaul_golden_sha(self):
        result = chain_mesh("push", seed=7, backhaul="wired").run(16.0)
        digest = hashlib.sha256(summary_json(result).encode()).hexdigest()
        assert digest == SERIAL_GOLDEN_SHA256

    def test_wired_equals_no_backhaul_serial(self):
        bare = downtown_grid(2, 2, rng=11, rate_per_s=0.5).run(4.0)
        wired = downtown_grid(
            2, 2, rng=11, rate_per_s=0.5, backhaul=BackhaulConfig()
        ).run(4.0)
        assert summary_json(bare) == summary_json(wired)
        assert "backhaul" not in wired.summary()

    def test_wired_equals_no_backhaul_sharded(self):
        bare = run_sharded(
            downtown_grid(2, 2, rng=11, rate_per_s=0.5), 4.0, in_process=True
        )
        wired = run_sharded(
            downtown_grid(2, 2, rng=11, rate_per_s=0.5, backhaul="wired"),
            4.0,
            in_process=True,
        )
        assert summary_json(bare) == summary_json(wired)


def _scheduled_fault_cfg(duration_s):
    return BackhaulConfig(
        policy="scheduled",
        sync_period_s=1.0,
        fault_plan=FaultPlan.seeded(
            5, duration_s=duration_s, n_outages=2, outage_s=1.5,
            drop_p=0.2, max_delay_s=0.5,
        ),
    )


def _grid_snapshot(workers, backhaul_factory, *, duration_s=6.0, seed=11):
    mesh = downtown_grid(
        2, 2, rng=seed, rate_per_s=0.5,
        backhaul=None if backhaul_factory is None else backhaul_factory(duration_s),
    )
    svc = TollingService(policy="as-sighted", max_lag_s=1e6, keep_events=False)
    mesh.add_sighting_tap(svc)
    result = run_sharded(mesh, duration_s, workers=workers)
    return summary_json(result) + json.dumps(svc.finish(), sort_keys=True)


class TestScheduledInvariance:
    @pytest.mark.slow
    def test_worker_count_invariance_scheduled(self):
        factory = lambda d: BackhaulConfig(policy="scheduled", sync_period_s=1.0)
        assert _grid_snapshot(1, factory) == _grid_snapshot(2, factory)

    @pytest.mark.slow
    def test_worker_count_invariance_under_faults(self):
        # The acceptance gate: identical FaultPlan + seed => byte-equal
        # summaries (mesh + billing) across two runs and across 1/2
        # workers.
        runs = [
            _grid_snapshot(w, _scheduled_fault_cfg) for w in (1, 1, 2)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestBatchedCompleteness:
    @pytest.mark.parametrize(
        "backhaul",
        [
            BackhaulConfig(policy="scheduled", sync_period_s=1.5),
            BackhaulConfig(policy="mule"),
        ],
        ids=["scheduled", "mule"],
    )
    def test_every_submitted_item_delivered_after_flush(self, backhaul):
        mesh = downtown_grid(2, 2, rng=11, rate_per_s=0.5, backhaul=backhaul)
        result = mesh.run(4.0)
        plane = mesh._plane
        plane.check_consistent()
        assert plane.items_submitted > 0
        summary = result.summary()["backhaul"]
        assert summary["items"]["delivered"] == summary["items"]["submitted"]
        assert result.backhaul["policy"] == backhaul.policy


# -- satellite: charge conservation under arbitrary fault plans -------------


def _synthetic_crossings(seed, duration_s, n_tags, window_s):
    """A time-ordered read stream: tags loop over two zones, each zone
    read at both of its poles ~1 s apart."""
    rng = as_rng(seed)
    zones = {
        "Z0": ("Z0/p0", "Z0/p1"),
        "Z1": ("Z1/p0", "Z1/p1"),
    }
    reads = []
    for tag_id in range(1, n_tags + 1):
        t = float(rng.uniform(0.0, window_s))
        while t < duration_s:
            for zone, stations in zones.items():
                for k, station in enumerate(stations):
                    t_read = t + 4.0 * list(zones).index(zone) + 1.1 * k
                    if t_read < duration_s:
                        reads.append(
                            (t_read, zone, station, tag_id, 40e3 * tag_id)
                        )
            t += float(rng.uniform(1.5 * window_s, 3.0 * window_s))
    reads.sort()
    return reads


class TestChargeConservationUnderFaults:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("policy", ["scheduled", "mule"])
    def test_every_crossing_billed_exactly_once(self, seed, policy):
        duration_s, window_s, toll_cents = 60.0, 5.0, 150
        reads = _synthetic_crossings(seed, duration_s, n_tags=6, window_s=window_s)
        assert len(reads) > 50
        stations = sorted({r[2] for r in reads})
        plan = FaultPlan.seeded(
            seed + 100,
            duration_s=duration_s,
            links=stations,
            n_outages=4,
            outage_s=8.0,
            drop_p=0.3,
            max_delay_s=4.0,
        )
        cfg = BackhaulConfig(
            policy=policy,
            sync_period_s=3.0,
            fault_plan=plan,
            gateways=("Z1/p1",),
        )
        svc = TollingService(
            policy="as-sighted",
            toll_cents=toll_cents,
            window_s=window_s,
            max_lag_s=10.0 * duration_s,  # cover any lag incl. final flush
            keep_events=False,
        )
        plane = BackhaulPlane(
            cfg,
            directory=IdentityDirectory(),
            taps=[svc],
            stations=stations,
            gateways=cfg.gateways,
        )
        for t_s, zone, station, tag_id, cfo_hz in reads:
            plane.submit(t_s, zone, station, tag_id, cfo_hz, 10.0, True)
        plane.final_flush(duration_s)
        plane.check_consistent()
        summary = svc.finish()

        expected_events = len(
            {(tag, zone, int(t // window_s)) for t, zone, _, tag, _ in reads}
        )
        assert summary["reads"] == len(reads)
        assert summary["toll_events"] == expected_events
        assert summary["charged"] == expected_events
        assert summary["total_charged_cents"] == expected_events * toll_cents
        svc.check_consistent()  # includes ShardedAccountStore.check_consistent

    def test_faulted_stream_is_repeat_seed_deterministic(self):
        def run_once():
            duration_s = 40.0
            reads = _synthetic_crossings(3, duration_s, n_tags=4, window_s=5.0)
            stations = sorted({r[2] for r in reads})
            cfg = BackhaulConfig(
                policy="scheduled",
                sync_period_s=2.0,
                fault_plan=FaultPlan.seeded(
                    9, duration_s=duration_s, links=stations,
                    drop_p=0.25, max_delay_s=2.0,
                ),
            )
            svc = TollingService(
                policy="as-sighted", max_lag_s=1e6, keep_events=False
            )
            plane = BackhaulPlane(
                cfg, directory=IdentityDirectory(), taps=[svc], stations=stations
            )
            for t_s, zone, station, tag_id, cfo_hz in reads:
                plane.submit(t_s, zone, station, tag_id, cfo_hz, 10.0, True)
            plane.final_flush(duration_s)
            return json.dumps(
                [plane.summary(), svc.finish()], sort_keys=True
            )

        assert run_once() == run_once()
