"""Cross-module integration tests: the full Caraoke pipelines."""

import numpy as np
import pytest

from repro.core import (
    AoAEstimator,
    CaraokeReader,
    CoherentDecoder,
    CollisionCounter,
    ReaderGeometry,
    SpeedEstimator,
    SpeedObservation,
    TwoReaderLocalizer,
)
from repro.constants import M_S_PER_MPH
from repro.hw.adc import ADC
from repro.phy.waveform import Waveform
from repro.sim.clock import NtpClock
from repro.sim.mobility import ConstantSpeedTrajectory
from repro.sim.scenario import Scene, make_tags, parking_scene, two_pole_speed_scene


class TestCountLocalizeDecodePipeline:
    def test_full_pipeline_one_scene(self):
        """One parked scene: count, localize and decode the same tags."""
        scene, street, targets = parking_scene(
            target_spots=[1, 3, 6], n_background_cars=0, rng=21
        )
        sim = scene.simulator(0, rng=22)
        reader = CaraokeReader(
            geometry=ReaderGeometry(scene.arrays[0], scene.road),
            sample_rate_hz=scene.sample_rate_hz,
        )
        collision = sim.query(0.0)
        report = reader.observe(collision)
        assert report.n_tags == 3

        # AoA agrees with ground truth geometry for every tag.
        estimator = reader.estimator
        for aoa in report.aoas:
            diffs = [
                abs(t.oscillator.carrier_hz - collision.lo_hz - aoa.cfo_hz)
                for t in scene.tags
            ]
            tag = scene.tags[int(np.argmin(diffs))]
            truth = np.rad2deg(
                estimator.best_pair(aoa).true_spatial_angle_rad(tag.position_m)
            )
            assert abs(aoa.alpha_deg - truth) < 4.0  # the paper's Fig 13 scale

        # Decode every counted tag from the same query stream.
        session = reader.decode_session(lambda t: sim.query(t))
        results = session.decode_all(
            [float(c) for c in report.count.cfos_hz()], max_queries=64
        )
        decoded = {r.packet.tag_id for r in results.values() if r.success}
        assert decoded == {t.packet.tag_id for t in scene.tags}

    def test_pipeline_through_adc(self):
        """Counting still works on 12-bit quantized captures (§11)."""
        scene, _, _ = parking_scene(target_spots=[2, 5], n_background_cars=1, rng=23)
        sim = scene.simulator(0, rng=24)
        collision = sim.query(0.0)
        adc = ADC(n_bits=12)
        digitized, _ = adc.quantize_waveform(collision.antenna(0))
        estimate = CollisionCounter().count(digitized)
        assert estimate.count == 3


class TestSpeedPipeline:
    @pytest.mark.parametrize("speed_mph", [20.0, 40.0])
    def test_drive_by_speed_estimate(self, speed_mph):
        """Full §12.3 pipeline: AoA -> two-reader fix at two stations ->
        NTP-timestamped speed, within the paper's 8 % envelope."""
        baseline = 61.0  # 200 feet
        arrays, road = two_pole_speed_scene(baseline_m=baseline)
        v = speed_mph * M_S_PER_MPH
        trajectory = ConstantSpeedTrajectory(
            start_m=np.array([-20.0, -1.8, 1.0]),
            velocity_m_s=np.array([v, 0.0, 0.0]),
        )
        estimators = [AoAEstimator(a) for a in arrays]
        localizers = [
            TwoReaderLocalizer(ReaderGeometry(arrays[0], road), ReaderGeometry(arrays[1], road)),
            TwoReaderLocalizer(ReaderGeometry(arrays[2], road), ReaderGeometry(arrays[3], road)),
        ]
        clocks = [NtpClock(rng=np.random.default_rng(31)), NtpClock(rng=np.random.default_rng(32))]

        observations = []
        # Measure when the car is mid-station (not at closest approach,
        # where the AoA geometry degenerates).
        for station, station_x in enumerate((0.0, baseline)):
            t_measure = trajectory.time_of_closest_approach(
                np.array([station_x - 8.0, 0.0, 1.0])
            )
            position = trajectory.position(t_measure)
            tags = make_tags(position[None, :], rng=40 + station)
            scene = Scene(tags=tags, road=road, arrays=arrays)
            base = 2 * station
            col_a = scene.simulator(base, rng=50 + station).query(t_measure)
            col_b = scene.simulator(base + 1, rng=60 + station).query(t_measure)
            aoa_a = estimators[base].estimate_all(col_a)[0]
            aoa_b = estimators[base + 1].estimate_all(col_b)[0]
            fix = localizers[station].locate(
                aoa_a, aoa_b, estimators[base], estimators[base + 1], hint_xy=position[:2]
            )
            observations.append(
                SpeedObservation(
                    position_m=fix,
                    timestamp_s=clocks[station].now(t_measure),
                    station=f"station-{station}",
                )
            )

        estimate = SpeedEstimator().estimate(observations[0], observations[1])
        assert estimate.speed_mph == pytest.approx(speed_mph, rel=0.08)


class TestRobustness:
    def test_counting_with_adc_saturation(self):
        """Clipping a strong capture must not crash the counter."""
        scene, _, _ = parking_scene(target_spots=[1], n_background_cars=0, rng=25)
        collision = scene.simulator(0, rng=26).query(0.0)
        wave = collision.antenna(0)
        hot = Waveform(wave.samples / wave.rms() * 0.8, wave.sample_rate_hz, wave.t0_s)
        clipped, _ = ADC(n_bits=12, full_scale=1.0).quantize_waveform(hot, agc=False)
        estimate = CollisionCounter().count(clipped)
        assert estimate.count >= 1

    def test_decoder_with_noise_only_capture(self):
        rng = np.random.default_rng(27)
        noise = Waveform(
            (rng.normal(size=2048) + 1j * rng.normal(size=2048)) * 1e-6, 4e6, 0.0
        )
        decoder = CoherentDecoder(4e6)
        result = decoder.decode([noise], target_cfo_hz=400e3)
        assert not result.success

    def test_counter_on_pure_noise_counts_zero_or_few(self):
        rng = np.random.default_rng(28)
        noise = Waveform(
            (rng.normal(size=2048) + 1j * rng.normal(size=2048)) * 1e-7, 4e6, 0.0
        )
        estimate = CollisionCounter().count(noise)
        assert estimate.count <= 1
