"""Unit tests for repro.sim.city (the discrete-event corridor engine)."""

import numpy as np
import pytest

from repro.channel.geometry import RoadSegment
from repro.errors import ConfigurationError
from repro.sim.city import (
    CityCorridor,
    HandoffLedger,
    MovingTag,
    StationCell,
    carve_cells,
)
from repro.sim.mobility import ConstantSpeedTrajectory
from repro.sim.scenario import city_corridor_scene

LANES = (-1.75, -5.25)


def small_corridor(mode="event", seed=17, n_poles=3, n_cars=5, **kwargs):
    """A compact corridor that still exercises handoff across cells."""
    scene, trajectories = city_corridor_scene(
        n_poles=n_poles,
        pole_spacing_m=35.0,
        n_cars=n_cars,
        speed_range_m_s=(10.0, 16.0),
        entry_window_s=1.5,
        rng=seed,
    )
    kwargs.setdefault("max_queries", 16)
    return CityCorridor.build(
        scene,
        trajectories,
        lane_ys_m=LANES,
        rng=seed,
        scheduling=mode,
        **kwargs,
    )


class TestStationCell:
    def road(self):
        return RoadSegment(x_min_m=-20.0, x_max_m=100.0, y_center_m=-3.5, width_m=7.0)

    def test_carve_partitions_road(self):
        road = self.road()
        cells = carve_cells([0.0, 40.0, 80.0], road, LANES)
        assert len(cells) == 3
        assert cells[0].x_min_m == road.x_min_m
        assert cells[-1].x_max_m == road.x_max_m
        # Abutting, no gaps, no overlaps.
        for left, right in zip(cells, cells[1:]):
            assert left.x_max_m == right.x_min_m
        # Every road x belongs to exactly one cell.
        for x in np.linspace(road.x_min_m, road.x_max_m - 1e-9, 50):
            assert sum(c.contains_x(x) for c in cells) == 1

    def test_boundaries_are_pole_midpoints(self):
        cells = carve_cells([0.0, 40.0], self.road(), LANES)
        assert cells[0].x_max_m == pytest.approx(20.0)

    def test_localizer_confined_to_segment(self):
        cells = carve_cells([0.0, 40.0], self.road(), LANES)
        localizer = cells[0].localizer()
        assert localizer.road.x_min_m == cells[0].x_min_m
        assert localizer.road.x_max_m == cells[0].x_max_m
        assert localizer.lane_ys_m == LANES

    def test_degenerate_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            StationCell(
                name="bad", x_min_m=5.0, x_max_m=5.0, road=self.road(), lane_ys_m=LANES
            )

    def test_unsorted_poles_rejected(self):
        with pytest.raises(ConfigurationError):
            carve_cells([40.0, 0.0], self.road(), LANES)


class TestHandoffLedger:
    def test_decode_then_handoff_then_own(self):
        ledger = HandoffLedger()
        ledger.record_decode("pole-0", 7, 1.0, 500e3, n_queries=4)
        ledger.record_handoff("pole-1", "pole-0", 7, 2.0, 500e3)
        ledger.record_own_hit("pole-1", 7, 3.0, 500e3)
        counts = ledger.counts()
        assert counts == {"decode": 1, "handoff": 1, "own": 1}
        assert ledger.downstream_sightings == 1
        assert ledger.handoff_resolution_rate == 1.0

    def test_redecode_classified(self):
        """A decode of an id another pole already knows is a re-decode —
        the waste handoff exists to avoid."""
        ledger = HandoffLedger()
        ledger.record_decode("pole-0", 7, 1.0, 500e3, n_queries=4)
        ledger.record_decode("pole-1", 7, 2.0, 500e3, n_queries=8)
        assert ledger.redecodes == 1
        assert ledger.decodes == 1
        assert ledger.handoff_resolution_rate == 0.0
        assert ledger.decode_queries_spent() == 12

    def test_same_station_decode_is_not_redecode(self):
        ledger = HandoffLedger()
        ledger.record_decode("pole-0", 7, 1.0, 500e3)
        ledger.record_decode("pole-0", 7, 5.0, 500e3)
        assert ledger.redecodes == 0

    def test_summary_shape(self):
        ledger = HandoffLedger()
        ledger.record_cell_entry(0.0, "cell-0", 7)
        ledger.record_decode_failure("pole-0", 1.0, 400e3, n_queries=16)
        ledger.record_decode_deferred("pole-0", 1.0, 300e3)
        summary = ledger.summary()
        assert summary["cell_entries"] == 1
        assert summary["counts"]["decode-failed"] == 1
        assert summary["counts"]["decode-deferred"] == 1
        assert summary["tags_identified"] == 0


class TestMovingTag:
    def trajectory(self):
        return ConstantSpeedTrajectory(
            start_m=np.array([-10.0, -1.75, 1.0]),
            velocity_m_s=np.array([10.0, 0.0, 0.0]),
            t0_s=2.0,
        )

    def test_time_at_x(self):
        scene, trajectories = city_corridor_scene(n_poles=2, n_cars=1, rng=1)
        tag = MovingTag(scene.tags[0], self.trajectory())
        assert tag.time_at_x(0.0) == pytest.approx(3.0)
        assert tag.time_at_x(-10.0) == pytest.approx(2.0)

    def test_in_range_gating(self):
        scene, _ = city_corridor_scene(n_poles=2, n_cars=1, rng=1)
        tag = MovingTag(scene.tags[0], self.trajectory())
        pole = np.array([0.0, 1.0, 4.0])
        assert tag.in_range(pole, 3.0)
        assert not tag.in_range(pole, 30.0)  # 280 m downstream by then


@pytest.mark.slow
class TestCityCorridorRun:
    def test_event_run_identifies_localizes_and_hands_off(self):
        corridor = small_corridor(seed=17)
        result = corridor.run(6.0)
        summary = result.summary()
        # Every car that showed a spike got identified.
        assert result.tags_seen == 5
        assert result.identified == 5
        # CSMA keeps the §9 guarantee on the shared street.
        assert result.corrupted_responses == 0
        # Cars crossed cell boundaries and were resolved by forwarded
        # cache entries, not re-decodes.
        assert result.ledger.downstream_sightings > 0
        assert result.ledger.handoff_resolution_rate > 0.5
        assert summary["handoff"]["cell_entries"] >= 5
        # Observations carry station/cell provenance and land inside
        # the claimed cell (up to the localizer's road margin — a fix
        # may sit just past the cell edge, footnote 10 style).
        assert corridor.observations
        cells = {s.cell.name: s.cell for s in corridor.stations}
        for obs in corridor.observations:
            assert obs.station is not None
            cell = cells[obs.cell]
            x = float(obs.position_m[0])
            assert cell.x_min_m - 1.5 <= x <= cell.x_max_m + 1.5

    def test_fix_accuracy_against_trajectories(self):
        corridor = small_corridor(seed=17)
        corridor.run(6.0)
        by_id = {tag.tag_id: tag for tag in corridor.tags}
        errors = []
        for obs in corridor.observations:
            truth = by_id[obs.tag_id].position(
                obs.timestamp_s + 120e-6  # fix refers to response time
            )
            errors.append(float(np.linalg.norm(obs.position_m - truth[:2])))
        assert np.median(errors) < 1.0

    @pytest.mark.parametrize("seed", [23, 41])
    @pytest.mark.parametrize("policy", ["accept", "ignore"])
    def test_deterministic_under_fixed_seed(self, seed, policy):
        """Two runs of one seed reproduce the event engine exactly —
        every ledger record in sequence and every result counter. This
        guards the scheduler/response-pool ordering under both harvest
        policies (the pool adds a second rng stream and out-of-order
        window publication, neither of which may leak nondeterminism)."""
        first = small_corridor(seed=seed, opportunistic=policy).run(4.0)
        second = small_corridor(seed=seed, opportunistic=policy).run(4.0)
        assert first.summary() == second.summary()
        assert first.ledger.records == second.ledger.records
        assert first.ledger.cell_entries == second.ledger.cell_entries
        assert first.ledger.cell_exits == second.ledger.cell_exits
        for field in (
            "queries_sent",
            "responses",
            "overheard_windows",
            "overheard_harvested",
            "overheard_donated",
            "burst_captures",
        ):
            assert getattr(first, field) == getattr(second, field), field

    def test_rounds_baseline_runs_clean(self):
        result = small_corridor(mode="rounds", seed=17).run(6.0)
        assert result.queries_sent > 0
        assert result.queries_deferred == 0  # turns are exclusive
        assert result.corrupted_responses == 0
        assert result.identified == result.tags_seen

    def test_handoff_disabled_forces_redecodes(self):
        result = small_corridor(seed=17, handoff=False).run(6.0)
        assert result.ledger.handoffs == 0
        assert result.ledger.redecodes > 0
        assert result.ledger.handoff_resolution_rate == 0.0

    def test_audible_cells_cover_radio_range(self):
        """Cells narrower than the radio range must widen the roster
        window — a tag two cells away but in range still responds."""
        scene, trajectories = city_corridor_scene(
            n_poles=6, pole_spacing_m=15.0, n_cars=2, rng=3
        )
        corridor = CityCorridor.build(
            scene, trajectories, lane_ys_m=LANES, rng=3
        )
        # Interior pole: 30.48 m range over 15 m cells needs > 3 cells.
        assert len(corridor._audible_cells[3]) > 3
        for index, audible in enumerate(corridor._audible_cells):
            pole_x = float(corridor.stations[index].pole_position_m[0])
            for j, station in enumerate(corridor.stations):
                cell = station.cell
                near = (
                    cell.x_min_m < pole_x + corridor.range_m
                    and cell.x_max_m > pole_x - corridor.range_m
                )
                if near:
                    assert j in audible

    def test_single_use_guard(self):
        corridor = small_corridor(seed=17)
        corridor.run(1.0)
        with pytest.raises(ConfigurationError):
            corridor.run(1.0)

    def test_burst_corruption_accounting_exact_under_csma(self):
        """With CSMA on, bursts defer to each other: the synthesis-time
        verdict already matches the post-hoc re-check."""
        result = small_corridor(seed=17).run(6.0)
        assert result.burst_captures > 0
        assert result.burst_corrupted_posthoc == result.burst_corrupted_at_synthesis
        assert result.burst_corruption_undercount == 0
        summary = result.summary()
        assert summary["burst_captures"] == result.burst_captures
        assert summary["burst_corrupted_posthoc"] == result.burst_corrupted_posthoc

    def test_blind_bursts_undercount_fixed_posthoc(self):
        """The no-CSMA ablation interleaves decode bursts blindly: a
        query recorded *after* a capture was synthesized can step on its
        response window. The synthesis-time count misses those; the
        post-hoc re-check against the final air log is exact (it matches
        an independent recount of stepped-on burst responses)."""
        corridor = small_corridor(seed=17, use_csma=False, handoff=False)
        result = corridor.run(6.0)
        assert result.burst_captures > 0
        # The under-count this accounting exists to fix actually occurs.
        assert result.burst_corrupted_posthoc > result.burst_corrupted_at_synthesis
        # Exactness: every burst capture put a "-burst" response on the
        # log, so the final log's own corruption sweep must agree.
        stepped_on = [
            r
            for r in corridor.air.corrupted_responses()
            if r.source.endswith("-burst")
        ]
        assert result.burst_corrupted_posthoc == len(stepped_on)

    def test_services_receive_provenanced_observations(self):
        from repro.apps import CarFinder

        corridor = small_corridor(seed=17)
        finder = corridor.subscribe(CarFinder())
        corridor.run(5.0)
        assert finder.known_tags()
        fix = finder.locate(finder.known_tags()[0])
        assert fix.station is not None and fix.cell is not None
