"""Unit tests for repro.core.speed (§7)."""

import numpy as np
import pytest

from repro.constants import (
    ANALYSIS_POLE_HEIGHT_M,
    FEET_PER_METER,
    M_S_PER_MPH,
    SPEED_BASELINE_M,
)
from repro.core.speed import (
    SpeedEstimate,
    SpeedEstimator,
    SpeedObservation,
    max_position_error_m,
    max_speed_error_fraction,
)
from repro.errors import ConfigurationError


class TestPositionErrorBound:
    def test_paper_worked_example(self):
        """Footnote 11: 13 ft pole, two 12 ft lanes -> ~8.5 feet."""
        error = max_position_error_m(
            pole_height_m=ANALYSIS_POLE_HEIGHT_M, n_lanes_same_direction=2
        )
        assert error * FEET_PER_METER == pytest.approx(8.5, abs=0.35)

    def test_taller_pole_smaller_error(self):
        short = max_position_error_m(3.0, 2)
        tall = max_position_error_m(6.0, 2)
        assert tall < short

    def test_more_lanes_larger_error(self):
        assert max_position_error_m(4.0, 3) > max_position_error_m(4.0, 1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            max_position_error_m(0.0, 2)
        with pytest.raises(ConfigurationError):
            max_position_error_m(4.0, 0)


class TestSpeedErrorBound:
    def test_paper_magnitudes(self):
        """§7: <= 5.5 % at 20 mph and <= 6.8 % at 50 mph over 360 feet.

        Using the paper's own position bound and 'tens of ms' sync: the
        budget lands in the same few-percent band and grows with speed.
        """
        position_error = max_position_error_m(ANALYSIS_POLE_HEIGHT_M, 2)
        e20 = max_speed_error_fraction(
            20 * M_S_PER_MPH, SPEED_BASELINE_M, position_error, 0.05
        )
        e50 = max_speed_error_fraction(
            50 * M_S_PER_MPH, SPEED_BASELINE_M, position_error, 0.05
        )
        assert 0.03 < e20 < 0.07
        assert 0.03 < e50 < 0.08
        assert e50 > e20  # the sync term grows with speed

    def test_longer_baseline_helps(self):
        short = max_speed_error_fraction(10.0, 60.0, 2.0, 0.02)
        long = max_speed_error_fraction(10.0, 110.0, 2.0, 0.02)
        assert long < short

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_speed_error_fraction(0.0, 100.0, 1.0, 0.01)


class TestSpeedEstimator:
    def test_basic_arithmetic(self):
        estimator = SpeedEstimator()
        a = SpeedObservation(np.array([0.0, 0.0]), timestamp_s=0.0)
        b = SpeedObservation(np.array([30.0, 0.5]), timestamp_s=2.0)
        estimate = estimator.estimate(a, b)
        assert estimate.speed_m_s == pytest.approx(15.0)
        assert estimate.distance_m == pytest.approx(30.0)

    def test_along_road_only_ignores_lateral(self):
        estimator = SpeedEstimator(along_road_only=True)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        b = SpeedObservation(np.array([30.0, 3.0]), 2.0)
        assert estimator.estimate(a, b).distance_m == pytest.approx(30.0)

    def test_euclidean_mode(self):
        estimator = SpeedEstimator(along_road_only=False)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        b = SpeedObservation(np.array([3.0, 4.0]), 1.0)
        assert estimator.estimate(a, b).speed_m_s == pytest.approx(5.0)

    def test_reversed_order_still_positive(self):
        estimator = SpeedEstimator()
        a = SpeedObservation(np.array([30.0, 0.0]), 2.0)
        b = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        assert estimator.estimate(a, b).speed_m_s == pytest.approx(15.0)

    def test_too_close_in_time_rejected(self):
        estimator = SpeedEstimator(min_elapsed_s=0.5)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        b = SpeedObservation(np.array([1.0, 0.0]), 0.1)
        with pytest.raises(ConfigurationError):
            estimator.estimate(a, b)

    def test_mph_conversion(self):
        estimate = SpeedEstimate(speed_m_s=20 * M_S_PER_MPH, distance_m=1, elapsed_s=1)
        assert estimate.speed_mph == pytest.approx(20.0)

    def test_expected_error_wrapper(self):
        value = SpeedEstimator.expected_error_fraction(
            15.0, 110.0, 2.0, sync_sigma_s=0.01
        )
        assert value == pytest.approx((2 * 2.0 + 15.0 * 0.01) / 110.0)


class TestEndToEndGeometry:
    def test_speed_error_with_paper_parameters_under_8pct(self):
        """Simulated §7 budget: position errors up to the bound plus NTP
        noise keep speed errors within the paper's 8% envelope."""
        rng = np.random.default_rng(0)
        baseline = SPEED_BASELINE_M
        pos_error = max_position_error_m(ANALYSIS_POLE_HEIGHT_M, 2)
        estimator = SpeedEstimator()
        for speed_mph in (10, 20, 30, 40, 50):
            v = speed_mph * M_S_PER_MPH
            worst = 0.0
            for _ in range(200):
                x1 = rng.uniform(-pos_error, pos_error)
                x2 = baseline + rng.uniform(-pos_error, pos_error)
                dt = baseline / v + rng.normal(0.0, 0.02)
                a = SpeedObservation(np.array([x1, 0.0]), 0.0)
                b = SpeedObservation(np.array([x2, 0.0]), dt)
                est = estimator.estimate(a, b)
                worst = max(worst, abs(est.speed_m_s - v) / v)
            assert worst < 0.08, f"{speed_mph} mph worst error {worst:.3f}"
