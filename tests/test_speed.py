"""Unit tests for repro.core.speed (§7)."""

import numpy as np
import pytest

from repro.constants import (
    ANALYSIS_POLE_HEIGHT_M,
    FEET_PER_METER,
    M_S_PER_MPH,
    SPEED_BASELINE_M,
)
from repro.core.speed import (
    CrossPoleSpeedTracker,
    SpeedEstimate,
    SpeedEstimator,
    SpeedObservation,
    max_position_error_m,
    max_speed_error_fraction,
)
from repro.errors import ConfigurationError
from repro.sim.mobility import ConstantSpeedTrajectory


class TestPositionErrorBound:
    def test_paper_worked_example(self):
        """Footnote 11: 13 ft pole, two 12 ft lanes -> ~8.5 feet."""
        error = max_position_error_m(
            pole_height_m=ANALYSIS_POLE_HEIGHT_M, n_lanes_same_direction=2
        )
        assert error * FEET_PER_METER == pytest.approx(8.5, abs=0.35)

    def test_taller_pole_smaller_error(self):
        short = max_position_error_m(3.0, 2)
        tall = max_position_error_m(6.0, 2)
        assert tall < short

    def test_more_lanes_larger_error(self):
        assert max_position_error_m(4.0, 3) > max_position_error_m(4.0, 1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            max_position_error_m(0.0, 2)
        with pytest.raises(ConfigurationError):
            max_position_error_m(4.0, 0)


class TestSpeedErrorBound:
    def test_paper_magnitudes(self):
        """§7: <= 5.5 % at 20 mph and <= 6.8 % at 50 mph over 360 feet.

        Using the paper's own position bound and 'tens of ms' sync: the
        budget lands in the same few-percent band and grows with speed.
        """
        position_error = max_position_error_m(ANALYSIS_POLE_HEIGHT_M, 2)
        e20 = max_speed_error_fraction(
            20 * M_S_PER_MPH, SPEED_BASELINE_M, position_error, 0.05
        )
        e50 = max_speed_error_fraction(
            50 * M_S_PER_MPH, SPEED_BASELINE_M, position_error, 0.05
        )
        assert 0.03 < e20 < 0.07
        assert 0.03 < e50 < 0.08
        assert e50 > e20  # the sync term grows with speed

    def test_longer_baseline_helps(self):
        short = max_speed_error_fraction(10.0, 60.0, 2.0, 0.02)
        long = max_speed_error_fraction(10.0, 110.0, 2.0, 0.02)
        assert long < short

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_speed_error_fraction(0.0, 100.0, 1.0, 0.01)


class TestSpeedEstimator:
    def test_basic_arithmetic(self):
        estimator = SpeedEstimator()
        a = SpeedObservation(np.array([0.0, 0.0]), timestamp_s=0.0)
        b = SpeedObservation(np.array([30.0, 0.5]), timestamp_s=2.0)
        estimate = estimator.estimate(a, b)
        assert estimate.speed_m_s == pytest.approx(15.0)
        assert estimate.distance_m == pytest.approx(30.0)

    def test_along_road_only_ignores_lateral(self):
        estimator = SpeedEstimator(along_road_only=True)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        b = SpeedObservation(np.array([30.0, 3.0]), 2.0)
        assert estimator.estimate(a, b).distance_m == pytest.approx(30.0)

    def test_euclidean_mode(self):
        estimator = SpeedEstimator(along_road_only=False)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        b = SpeedObservation(np.array([3.0, 4.0]), 1.0)
        assert estimator.estimate(a, b).speed_m_s == pytest.approx(5.0)

    def test_reversed_order_still_positive(self):
        estimator = SpeedEstimator()
        a = SpeedObservation(np.array([30.0, 0.0]), 2.0)
        b = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        assert estimator.estimate(a, b).speed_m_s == pytest.approx(15.0)

    def test_too_close_in_time_rejected(self):
        estimator = SpeedEstimator(min_elapsed_s=0.5)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0)
        b = SpeedObservation(np.array([1.0, 0.0]), 0.1)
        with pytest.raises(ConfigurationError):
            estimator.estimate(a, b)

    def test_mph_conversion(self):
        estimate = SpeedEstimate(speed_m_s=20 * M_S_PER_MPH, distance_m=1, elapsed_s=1)
        assert estimate.speed_mph == pytest.approx(20.0)

    def test_expected_error_wrapper(self):
        value = SpeedEstimator.expected_error_fraction(
            15.0, 110.0, 2.0, sync_sigma_s=0.01
        )
        assert value == pytest.approx((2 * 2.0 + 15.0 * 0.01) / 110.0)


class TestEndToEndGeometry:
    def test_speed_error_with_paper_parameters_under_8pct(self):
        """Simulated §7 budget: position errors up to the bound plus NTP
        noise keep speed errors within the paper's 8% envelope."""
        rng = np.random.default_rng(0)
        baseline = SPEED_BASELINE_M
        pos_error = max_position_error_m(ANALYSIS_POLE_HEIGHT_M, 2)
        estimator = SpeedEstimator()
        for speed_mph in (10, 20, 30, 40, 50):
            v = speed_mph * M_S_PER_MPH
            worst = 0.0
            for _ in range(200):
                x1 = rng.uniform(-pos_error, pos_error)
                x2 = baseline + rng.uniform(-pos_error, pos_error)
                dt = baseline / v + rng.normal(0.0, 0.02)
                a = SpeedObservation(np.array([x1, 0.0]), 0.0)
                b = SpeedObservation(np.array([x2, 0.0]), dt)
                est = estimator.estimate(a, b)
                worst = max(worst, abs(est.speed_m_s - v) / v)
            assert worst < 0.08, f"{speed_mph} mph worst error {worst:.3f}"


class TestCrossPoleSpeedTracker:
    """The predictive-handoff trigger, gated with no mesh in sight:
    sightings stream in, estimates come out exactly at pole crossings,
    and against constant-speed trajectory ground truth the recovered
    speed is exact (fixes sampled from the trajectory itself)."""

    def trajectory(self, speed=13.0):
        return ConstantSpeedTrajectory(
            start_m=np.array([-10.0, -1.75, 1.0]),
            velocity_m_s=np.array([speed, 0.0, 0.0]),
            t0_s=0.0,
        )

    def fix(self, trajectory, t_s, station):
        """A sighting whose position is the trajectory's ground truth —
        what a perfect §6 localization would report."""
        return SpeedObservation(
            position_m=trajectory.position(t_s)[:2], timestamp_s=t_s, station=station
        )

    def test_recovers_trajectory_speed_exactly(self):
        trajectory = self.trajectory(speed=13.0)
        tracker = CrossPoleSpeedTracker()
        assert tracker.observe(7, self.fix(trajectory, 1.0, "pole-0")) is None
        estimate = tracker.observe(7, self.fix(trajectory, 4.0, "pole-1"))
        assert estimate is not None
        assert estimate.speed_m_s == pytest.approx(13.0)
        assert tracker.latest(7).speed_m_s == pytest.approx(13.0)

    def test_same_station_sightings_only_refresh_the_anchor(self):
        trajectory = self.trajectory()
        tracker = CrossPoleSpeedTracker()
        for t in (0.5, 1.0, 1.5):
            assert tracker.observe(7, self.fix(trajectory, t, "pole-0")) is None
        # The pairing uses the *latest* pole-0 fix: elapsed is 2.0, not 3.0.
        estimate = tracker.observe(7, self.fix(trajectory, 3.5, "pole-1"))
        assert estimate.elapsed_s == pytest.approx(2.0)
        assert estimate.speed_m_s == pytest.approx(trajectory.speed_m_s)

    def test_overlap_ping_pong_keeps_the_anchor(self):
        """Neighboring poles' coverage overlaps: both sight the car
        within one cadence tick. Too-soon cross-station sightings must
        not destroy the anchor, or no pair ever grows old enough to
        estimate — the estimate still arrives once the car is past the
        overlap, and it matches ground truth."""
        trajectory = self.trajectory(speed=15.0)
        tracker = CrossPoleSpeedTracker()
        t, station = 0.0, 0
        # 0.04 s alternation for half a second: every sighting too soon.
        while t < 0.5:
            estimate = tracker.observe(
                7, self.fix(trajectory, t, f"pole-{station % 2}")
            )
            assert estimate is None
            t += 0.04
            station += 1
        # Past the overlap only pole-1 sights the car; the pair with the
        # surviving pole-0 anchor finally reaches the minimum pairing
        # baseline and emits.
        estimate = tracker.observe(7, self.fix(trajectory, 1.6, "pole-1"))
        assert estimate is not None
        assert estimate.speed_m_s == pytest.approx(15.0)

    def test_stale_anchor_is_rebased_not_paired(self):
        """A car that parked between poles has no meaningful speed over
        the interval: the old fix is discarded and the next crossing
        starts a fresh pair."""
        trajectory = self.trajectory()
        tracker = CrossPoleSpeedTracker(max_fix_age_s=30.0)
        assert tracker.observe(7, self.fix(trajectory, 0.0, "pole-0")) is None
        assert tracker.observe(7, self.fix(trajectory, 100.0, "pole-1")) is None
        assert tracker.latest(7) is None
        # The rebased anchor (pole-1) pairs with the next pole normally.
        estimate = tracker.observe(7, self.fix(trajectory, 103.0, "pole-2"))
        assert estimate.speed_m_s == pytest.approx(trajectory.speed_m_s)

    def test_cross_frame_sightings_rebase_not_pair(self):
        """Fixes from different coordinate frames (two mesh corridors —
        their layout gap is artifice, not road) must never be
        differenced; the crossing rebases the anchor and the next
        in-frame pole pairs normally."""
        tracker = CrossPoleSpeedTracker()
        a = SpeedObservation(np.array([80.0, 0.0]), 0.0, station="A/pole-1", frame="A")
        b0 = SpeedObservation(np.array([1100.0, 0.0]), 5.0, station="B/pole-0", frame="B")
        b1 = SpeedObservation(np.array([1139.0, 0.0]), 8.0, station="B/pole-1", frame="B")
        assert tracker.observe(7, a) is None
        assert tracker.observe(7, b0) is None  # rebase, no 1020 m "hop"
        assert tracker.latest(7) is None
        estimate = tracker.observe(7, b1)
        assert estimate.speed_m_s == pytest.approx(13.0)

    def test_implausible_pair_discarded(self):
        """An outlier fix (or a fingerprint misattribution) reading
        faster than any car must not become the account's speed."""
        tracker = CrossPoleSpeedTracker(max_speed_m_s=60.0)
        a = SpeedObservation(np.array([0.0, 0.0]), 0.0, station="pole-0")
        b = SpeedObservation(np.array([100.0, 0.0]), 1.2, station="pole-1")
        assert tracker.observe(7, a) is None
        assert tracker.observe(7, b) is None  # 83 m/s: discarded
        assert tracker.latest(7) is None

    def test_short_baseline_pairs_wait(self):
        """§7 error budget: two fixes 0.3 s apart amplify meter-level
        position error into tens of m/s, so the tracker holds the
        anchor until the car has put real road between the fixes."""
        trajectory = self.trajectory(speed=13.0)
        tracker = CrossPoleSpeedTracker(min_pair_elapsed_s=1.0)
        assert tracker.observe(7, self.fix(trajectory, 1.0, "pole-0")) is None
        assert tracker.observe(7, self.fix(trajectory, 1.3, "pole-1")) is None
        estimate = tracker.observe(7, self.fix(trajectory, 2.5, "pole-1"))
        assert estimate.speed_m_s == pytest.approx(13.0)

    def test_forget_and_bounds(self):
        trajectory = self.trajectory()
        tracker = CrossPoleSpeedTracker(max_entries=2)
        for tag_id in (1, 2, 3):
            tracker.observe(tag_id, self.fix(trajectory, float(tag_id), "pole-0"))
        # Oldest anchor evicted by the bound.
        assert len(tracker) == 2
        assert tracker.tracked() == [2, 3]
        tracker.forget(2)
        assert tracker.tracked() == [3]
        assert tracker.latest(2) is None
