"""Unit tests for repro.utils."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.utils import (
    amplitude_to_db,
    as_rng,
    bits_to_int,
    db_to_amplitude,
    db_to_power,
    dbm_to_watts,
    int_to_bits,
    pack_bits,
    power_to_db,
    prbs_bits,
    unpack_bits,
    watts_to_dbm,
    wrap_angle,
)


class TestRng:
    def test_seed_gives_generator(self):
        rng = as_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert as_rng(7).integers(0, 1000) == as_rng(7).integers(0, 1000)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestDbConversions:
    def test_power_roundtrip(self):
        assert power_to_db(db_to_power(13.0)) == pytest.approx(13.0)

    def test_amplitude_roundtrip(self):
        assert amplitude_to_db(db_to_amplitude(-4.5)) == pytest.approx(-4.5)

    def test_3db_doubles_power(self):
        assert db_to_power(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_6db_doubles_amplitude(self):
        assert db_to_amplitude(6.0206) == pytest.approx(2.0, rel=1e-4)

    def test_dbm_zero_is_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_dbm_roundtrip(self):
        assert watts_to_dbm(dbm_to_watts(-51.7)) == pytest.approx(-51.7)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            power_to_db(-1.0)

    def test_zero_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            amplitude_to_db(0.0)


class TestBitPacking:
    def test_known_value(self):
        assert bits_to_int([1, 0, 1, 1]) == 0b1011

    def test_int_to_bits_msb_first(self):
        assert list(int_to_bits(0b1011, 4)) == [1, 0, 1, 1]

    def test_width_padding(self):
        assert list(int_to_bits(1, 5)) == [0, 0, 0, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(-1, 4)

    def test_pack_unpack_fields(self):
        bits = pack_bits([(5, 4), (200, 8), (1, 1)])
        assert bits.size == 13
        assert unpack_bits(bits, [4, 8, 1]) == [5, 200, 1]

    def test_unpack_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            unpack_bits(np.zeros(5, dtype=np.uint8), [4, 4])

    def test_invalid_bit_value_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**40 - 1))
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 40)) == value


class TestPrbs:
    def test_deterministic(self):
        assert np.array_equal(prbs_bits(64, seed=123), prbs_bits(64, seed=123))

    def test_different_seeds_differ(self):
        assert not np.array_equal(prbs_bits(64, seed=1), prbs_bits(64, seed=2))

    def test_zero_seed_is_valid(self):
        bits = prbs_bits(32, seed=0)
        assert bits.size == 32

    def test_balanced_ish(self):
        bits = prbs_bits(4096, seed=99)
        assert 0.4 < bits.mean() < 0.6


class TestWrapAngle:
    def test_identity_inside(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)

    def test_wraps_above_pi(self):
        assert wrap_angle(np.pi + 0.5) == pytest.approx(-np.pi + 0.5)

    def test_wraps_below_minus_pi(self):
        assert wrap_angle(-np.pi - 0.5) == pytest.approx(np.pi - 0.5)

    def test_array_input(self):
        out = wrap_angle(np.array([0.0, 2 * np.pi]))
        assert np.allclose(out, [0.0, 0.0])

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_always_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -np.pi - 1e-9 <= wrapped <= np.pi + 1e-9
