"""Unit tests for repro.phy.waveform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SpectrumError
from repro.phy.waveform import Waveform

FS = 4e6


class TestConstruction:
    def test_silence_length(self):
        wave = Waveform.silence(512e-6, FS)
        assert wave.n_samples == 2048
        assert wave.power() == 0.0

    def test_tone_amplitude_and_power(self):
        wave = Waveform.tone(100e3, 512e-6, FS, amplitude=2.0)
        assert wave.power() == pytest.approx(4.0)

    def test_tone_absolute_phase_coherence(self):
        """Two tones created at different t0 must be mutually coherent."""
        a = Waveform.tone(250e3, 100e-6, FS, t0_s=0.0)
        b = Waveform.tone(250e3, 100e-6, FS, t0_s=17e-6)
        # b's first sample should equal a evaluated at 17us... but 17us at
        # 4 MHz is 68 samples exactly.
        assert b.samples[0] == pytest.approx(a.samples[68], abs=1e-12)

    def test_rejects_2d_samples(self):
        with pytest.raises(ConfigurationError):
            Waveform(np.zeros((2, 2)), FS)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            Waveform(np.zeros(4), -1.0)


class TestTimeAxis:
    def test_times_and_end(self):
        wave = Waveform.silence(1e-3, FS, t0_s=0.5)
        assert wave.times()[0] == pytest.approx(0.5)
        assert wave.end_s == pytest.approx(0.5 + 1e-3)

    def test_delayed_shifts_t0_only(self):
        wave = Waveform.tone(1e3, 1e-4, FS)
        shifted = wave.delayed(1e-3)
        assert shifted.t0_s == pytest.approx(1e-3)
        assert np.array_equal(shifted.samples, wave.samples)


class TestAlgebra:
    def test_scaled(self):
        wave = Waveform.tone(1e3, 1e-4, FS)
        assert wave.scaled(2j).samples[0] == pytest.approx(2j * wave.samples[0])

    def test_mixed_shifts_tone_frequency(self):
        wave = Waveform.tone(100e3, 512e-6, FS)
        mixed = wave.mixed(50e3)
        spectrum = np.fft.fft(mixed.samples)
        peak_bin = np.argmax(np.abs(spectrum))
        expected_bin = round(150e3 / (FS / wave.n_samples))
        assert peak_bin == expected_bin

    def test_mix_down_gives_dc(self):
        wave = Waveform.tone(100e3, 512e-6, FS)
        baseband = wave.mixed(-100e3)
        assert np.allclose(baseband.samples, baseband.samples[0])

    def test_add_aligned(self):
        a = Waveform.tone(1e3, 1e-4, FS)
        total = a + a
        assert np.allclose(total.samples, 2 * a.samples)

    def test_add_offset_spans_union(self):
        a = Waveform.silence(1e-4, FS, t0_s=0.0)
        b = Waveform.silence(1e-4, FS, t0_s=1e-4)
        total = a + b
        assert total.t0_s == 0.0
        assert total.duration_s == pytest.approx(2e-4)

    def test_add_offset_places_samples(self):
        a = Waveform(np.ones(4), FS, t0_s=0.0)
        b = Waveform(np.ones(4), FS, t0_s=2 / FS)
        total = a + b
        assert np.allclose(total.samples, [1, 1, 2, 2, 1, 1])

    def test_add_rate_mismatch_rejected(self):
        a = Waveform.silence(1e-4, FS)
        b = Waveform.silence(1e-4, 2 * FS)
        with pytest.raises(ConfigurationError):
            a + b


class TestWindows:
    def test_window_extracts_offset(self):
        wave = Waveform(np.arange(16, dtype=complex), FS)
        win = wave.window(4, 8)
        assert np.array_equal(win.samples, np.arange(4, 12))
        assert win.t0_s == pytest.approx(4 / FS)

    def test_window_out_of_range(self):
        wave = Waveform.silence(1e-5, FS)
        with pytest.raises(SpectrumError):
            wave.window(0, wave.n_samples + 1)

    def test_sliced_by_time(self):
        wave = Waveform(np.arange(16, dtype=complex), FS, t0_s=1.0)
        part = wave.sliced(1.0 + 4 / FS, 1.0 + 8 / FS)
        assert np.array_equal(part.samples, np.arange(4, 8))

    def test_sliced_disjoint_raises(self):
        wave = Waveform.silence(1e-5, FS)
        with pytest.raises(SpectrumError):
            wave.sliced(1.0, 2.0)

    def test_rms_of_unit_tone(self):
        assert Waveform.tone(1e3, 1e-4, FS).rms() == pytest.approx(1.0)
