"""Unit tests for repro.phy.modulation."""

import numpy as np
import pytest

from repro.constants import DEFAULT_SAMPLE_RATE_HZ, PACKET_BITS, RESPONSE_DURATION_S
from repro.errors import ConfigurationError, ModulationError
from repro.phy.modulation import OokModulator


@pytest.fixture
def modulator():
    return OokModulator()


class TestConfiguration:
    def test_default_samples_per_chip(self, modulator):
        assert modulator.samples_per_chip == 4  # 4 MHz x 1 us

    def test_8mhz_rate(self):
        assert OokModulator(sample_rate_hz=8e6).samples_per_chip == 8

    def test_non_integer_chip_rejected(self):
        with pytest.raises(ConfigurationError):
            OokModulator(sample_rate_hz=2.5e6)


class TestModulate:
    def test_chip_expansion(self, modulator):
        samples = modulator.modulate_chips(np.array([1, 0]))
        assert np.array_equal(samples, [1, 1, 1, 1, 0, 0, 0, 0])

    def test_full_packet_duration(self, modulator):
        bits = np.random.default_rng(0).integers(0, 2, size=PACKET_BITS)
        samples = modulator.modulate_bits(bits)
        assert samples.size == int(RESPONSE_DURATION_S * DEFAULT_SAMPLE_RATE_HZ)

    def test_mean_is_half(self, modulator):
        """Manchester DC level: the tone the FFT peak reads off (Eq 5)."""
        bits = np.random.default_rng(1).integers(0, 2, size=256)
        assert modulator.modulate_bits(bits).mean() == pytest.approx(0.5)

    def test_rejects_non_binary_chips(self, modulator):
        with pytest.raises(ModulationError):
            modulator.modulate_chips(np.array([0.5, 2.0]))


class TestDemodulate:
    def test_matched_filter_values(self, modulator):
        samples = modulator.modulate_chips(np.array([1, 0, 1]))
        soft = modulator.chip_matched_filter(samples)
        assert np.allclose(soft, [1.0, 0.0, 1.0])

    def test_matched_filter_complex_input_uses_real(self, modulator):
        samples = modulator.modulate_chips(np.array([1, 0])).astype(complex) + 5j
        soft = modulator.chip_matched_filter(samples)
        assert np.allclose(soft, [1.0, 0.0])

    def test_matched_filter_too_short(self, modulator):
        with pytest.raises(ModulationError):
            modulator.chip_matched_filter(np.zeros(3))

    def test_roundtrip(self, modulator):
        bits = np.random.default_rng(2).integers(0, 2, size=PACKET_BITS).astype(np.uint8)
        samples = modulator.modulate_bits(bits)
        assert np.array_equal(modulator.demodulate_soft(samples, n_bits=PACKET_BITS), bits)

    def test_roundtrip_with_noise(self, modulator):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=PACKET_BITS).astype(np.uint8)
        samples = modulator.modulate_bits(bits) + rng.normal(0, 0.15, 2048)
        assert np.array_equal(modulator.demodulate_soft(samples, n_bits=PACKET_BITS), bits)

    def test_roundtrip_with_dc_and_gain(self, modulator):
        bits = np.random.default_rng(4).integers(0, 2, size=64).astype(np.uint8)
        samples = 3.5 * modulator.modulate_bits(bits) + 7.0
        assert np.array_equal(modulator.demodulate_soft(samples, n_bits=64), bits)

    def test_n_bits_too_many(self, modulator):
        samples = modulator.modulate_bits(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ModulationError):
            modulator.demodulate_soft(samples, n_bits=16)
