"""Conformance suite for the cross-pole shared response pool.

The physics under test: one tag response is one on-air transmission, so
a pole overhearing a window another pole triggered must see the *same*
transmission-side state (bits, CFO fingerprint, random oscillator
phase) under *its own* receiver-side state (per-pole delay/attenuation,
array geometry, noise) — and a pole never harvests a window its own
receiver was busy capturing. ``opportunistic="ignore"`` must reproduce
the pool-less corridor bit for bit (golden-pinned below).
"""

import hashlib

import numpy as np
import pytest

from repro.channel.geometry import spatial_angle_rad
from repro.core.cfo import extract_cfo_peaks
from repro.core.decoding import CoherentDecoder, DecodeSession
from repro.core.localization import AoAEstimator
from repro.errors import ConfigurationError
from repro.sim.city import (
    MovingCollisionSource,
    MovingTag,
    ResponsePool,
    TagWaveformBank,
    TriggerWindow,
)
from repro.sim.mobility import ConstantSpeedTrajectory
from repro.sim.scenario import city_corridor_scene

from tests.test_city_corridor import small_corridor

#: Ledger digests of the pre-pool corridor (captured before the pool
#: landed): ``opportunistic="ignore"`` must keep reproducing them.
GOLDEN_LEDGER_SHA256 = {
    17: "5ca28aa2f2901eb8262e2ba3581040e716d1d64159f53e2941acb7fd85178db5",
    41: "a3d9b20a42aa8af8b1408dafd87654e8a76206545640b175659c4484d4cbae41",
}
GOLDEN_FIELDS = ("t_s", "station", "kind", "cfo_hz", "tag_id", "from_station", "n_queries")
GOLDEN_SUMMARY = {
    17: {
        "queries_sent": 240,
        "responses": 542,
        "corrupted_responses": 0,
        "tags_seen": 5,
        "tags_identified": 5,
        "burst_captures": 13,
        "mean_identification_queries": 2.8,
    },
    41: {
        "queries_sent": 242,
        "responses": 522,
        "corrupted_responses": 0,
        "tags_seen": 5,
        "tags_identified": 5,
        "burst_captures": 16,
        "mean_identification_queries": 3.6,
    },
}


def two_pole_world(seed=5, noise_power_w=0.0):
    """Two poles 30 m apart plus one tag parked midway between them.

    The tag sits inside both poles' radio range, so a window pole A
    triggers is audible at pole B — the overlap case the pool exists for.
    """
    scene, _ = city_corridor_scene(
        n_poles=2, pole_spacing_m=30.0, n_cars=1, entry="spread", rng=seed
    )
    rng = np.random.default_rng(seed)
    bank = TagWaveformBank(scene.lo_hz, scene.sample_rate_hz, rng=rng)
    sources = [
        MovingCollisionSource(
            array.positions_m,
            scene.channel,
            bank,
            noise_power_w=noise_power_w,
            rng=rng,
        )
        for array in scene.arrays
    ]
    trajectory = ConstantSpeedTrajectory(
        start_m=np.array([15.0, -1.75, 1.0]),
        velocity_m_s=np.array([12.0, 0.0, 0.0]),
        t0_s=0.0,
    )
    tag = MovingTag(transponder=scene.tags[0], trajectory=trajectory)
    return scene, sources, tag


class TestOverhearPhysics:
    def test_overheard_capture_has_pole_b_geometry_same_phase(self):
        scene, (src_a, src_b), tag = two_pole_world()
        t_query = 0.0
        own = src_a.query([tag], t_query)
        response_t0 = own.t0_s
        phase = own.truth[0].response.phase0_rad

        overheard = src_b.overhear([(tag, phase)], response_t0, origin="pole-0")
        assert overheard.overheard_from == "pole-0"
        assert overheard.t0_s == response_t0

        # Same transmission: identical bits and oscillator phase.
        assert np.array_equal(overheard.truth[0].response.bits, own.truth[0].response.bits)
        assert overheard.truth[0].response.phase0_rad == pytest.approx(phase)

        # This pole's channel: Friis amplitude + path phase from pole B's
        # antenna positions to the tag's position at response time.
        position = tag.position(response_t0)
        amp = tag.transponder.tx_amplitude
        expected = np.array(
            [
                scene.channel.coefficient(position, rx) * amp * np.exp(1j * phase)
                for rx in src_b.antenna_positions_m
            ]
        )
        assert np.allclose(overheard.truth[0].channels, expected)
        # ... and genuinely different from pole A's (different delays).
        assert not np.allclose(overheard.truth[0].channels, own.truth[0].channels)

    def test_overheard_capture_same_cfo_fingerprint(self):
        scene, (src_a, src_b), tag = two_pole_world()
        own = src_a.query([tag], 0.0)
        phase = own.truth[0].response.phase0_rad
        overheard = src_b.overhear([(tag, phase)], own.t0_s, origin="pole-0")
        true_cfo = own.truth[0].cfo_hz(scene.lo_hz)
        for capture in (own, overheard):
            peaks = extract_cfo_peaks(capture.antenna(0), min_snr_db=15)
            assert len(peaks) == 1
            assert peaks[0].cfo_hz == pytest.approx(true_cfo, abs=100.0)

    def test_overheard_aoa_points_at_tag_from_pole_b(self):
        scene, (src_a, src_b), tag = two_pole_world()
        own = src_a.query([tag], 0.0)
        phase = own.truth[0].response.phase0_rad
        overheard = src_b.overhear([(tag, phase)], own.t0_s, origin="pole-0")
        estimator = AoAEstimator(scene.arrays[1])
        cfo = own.truth[0].cfo_hz(scene.lo_hz)
        estimate = estimator.estimate_for_cfo(overheard, cfo)
        position = tag.position(own.t0_s)
        pair = scene.arrays[1].pairs()[estimate.best_pair_index]
        expected = spatial_angle_rad(position - pair.midpoint_m, pair.axis)
        assert estimate.alpha_rad == pytest.approx(expected, abs=np.deg2rad(3.0))

    def test_overhear_needs_responders(self):
        _, (_, src_b), _ = two_pole_world()
        with pytest.raises(ConfigurationError):
            src_b.overhear([], 0.0)


class TestResponsePool:
    def window(self, origin, end_s, corrupted=False, tags=(), phases=()):
        return TriggerWindow(
            origin=origin,
            t_query_s=end_s - 632e-6,
            start_s=end_s - 512e-6,
            end_s=end_s,
            tags=tuple(tags),
            phases_rad=tuple(phases),
            corrupted=corrupted,
        )

    def test_windows_ending_in_half_open_and_origin_excluded(self):
        pool = ResponsePool()
        w1 = pool.publish(self.window("pole-0", 0.010))
        w2 = pool.publish(self.window("pole-1", 0.020))
        w3 = pool.publish(self.window("pole-0", 0.030))
        got = pool.windows_ending_in(0.010, 0.030, exclude_origin="pole-1")
        assert got == [w3]  # w1 excluded at lo (half-open), w2 by origin
        assert pool.windows_ending_in(0.0, 0.030) == [w1, w2, w3]
        assert pool.windows_ending_in(0.030, 1.0) == []
        assert len(pool) == 3

    def test_windows_out_of_record_order_are_still_found(self):
        """A burst publishes future windows early; a later harvest range
        must still see them exactly once."""
        pool = ResponsePool()
        late = pool.publish(self.window("pole-0", 0.050))  # future window
        early = pool.publish(self.window("pole-1", 0.010))
        assert pool.windows_ending_in(0.0, 0.020) == [early]
        assert pool.windows_ending_in(0.020, 0.060) == [late]

    def test_harvest_skips_own_capture_slots(self):
        _, (src_a, _), tag = two_pole_world()
        own_capture = src_a.query([tag], 0.0)
        phase = own_capture.truth[0].response.phase0_rad
        pool = ResponsePool()
        clear = pool.publish(
            self.window("pole-0", 0.020, tags=[tag], phases=[phase])
        )
        busy = pool.publish(
            self.window("pole-0", 0.040, tags=[tag], phases=[phase])
        )
        pole_b = np.array([30.0, 1.0, 3.8])
        own_windows = [(busy.start_s - 100e-6, busy.start_s + 100e-6)]
        harvested = pool.harvest(
            "pole-1", pole_b, 0.0, 0.050, own_windows, range_m=30.0
        )
        assert [w for w, _ in harvested] == [clear]

    def test_harvest_range_gates_responders(self):
        _, (src_a, _), tag = two_pole_world()
        own_capture = src_a.query([tag], 0.0)
        phase = own_capture.truth[0].response.phase0_rad
        pool = ResponsePool()
        pool.publish(self.window("pole-0", 0.020, tags=[tag], phases=[phase]))
        far_pole = np.array([500.0, 1.0, 3.8])
        assert pool.harvest("pole-1", far_pole, 0.0, 0.050, [], 30.0) == []
        near_pole = np.array([20.0, 1.0, 3.8])
        harvested = pool.harvest("pole-1", near_pole, 0.0, 0.050, [], 30.0)
        assert len(harvested) == 1
        (window, audible), = harvested
        assert audible == [(tag, phase)]

    def test_corrupted_window_carries_no_phases(self):
        window = self.window("pole-0", 0.020, corrupted=True)
        assert window.corrupted and window.phases_rad == ()
        with pytest.raises(ConfigurationError):
            TriggerWindow("pole-0", 0.0, 120e-6, 632e-6, tags=(1, 2), phases_rad=(0.1,))
        with pytest.raises(ConfigurationError):
            TriggerWindow("pole-0", 0.0, 632e-6, 120e-6)

    def test_harvest_surfaces_audible_corrupted_windows(self):
        """A corrupted window carries its responders (no phases) and is
        harvested with an empty synthesis list when audible — the
        receiver buffered garbage, and corruption accounting must see
        it — but only when a responder was actually in range."""
        _, _, tag = two_pole_world()
        pool = ResponsePool()
        pool.publish(self.window("pole-0", 0.020, corrupted=True, tags=[tag]))
        near_pole = np.array([20.0, 1.0, 3.8])
        harvested = pool.harvest("pole-1", near_pole, 0.0, 0.050, [], 30.0)
        assert len(harvested) == 1
        (window, audible), = harvested
        assert window.corrupted and audible == []
        far_pole = np.array([500.0, 1.0, 3.8])
        assert pool.harvest("pole-1", far_pole, 0.0, 0.050, [], 30.0) == []


class TestDecodeSessionDonations:
    def sessions(self, seed=9):
        from repro.channel.antenna import TriangleArray
        from repro.channel.collision import StaticCollisionSimulator
        from repro.channel.noise import thermal_noise_power_w
        from repro.channel.propagation import LosChannel
        from tests.conftest import make_tag

        fs = 4e6
        rng = np.random.default_rng(seed)
        tags = [
            make_tag(cfo, position_m=(x, -8.0, 1.0), seed=seed + i)
            for i, (cfo, x) in enumerate([(300e3, -4.0), (520e3, 2.0), (840e3, 6.0)])
        ]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        noise = 40 * thermal_noise_power_w(fs)

        def sim(rng_seed):
            return StaticCollisionSimulator(
                tags, array.positions_m, LosChannel(), noise_power_w=noise, rng=rng_seed
            )

        return fs, tags, sim

    def test_ignore_drops_donations_and_matches_plain_run(self):
        fs, tags, sim = self.sessions()
        target = 520e3
        plain = DecodeSession(query_fn=sim(1).query, decoder=CoherentDecoder(fs))
        result_plain = plain.decode_target(target, max_queries=16)

        ignoring = DecodeSession(
            query_fn=sim(1).query, decoder=CoherentDecoder(fs), opportunistic="ignore"
        )
        assert ignoring.donate_capture(sim(2).query(0.0)) is False
        result_ignore = ignoring.decode_target(target, max_queries=16)
        assert result_ignore.packet == result_plain.packet
        assert result_ignore.n_queries == result_plain.n_queries
        assert result_ignore.n_overheard == 0
        assert len(ignoring.captures) == len(plain.captures)

    def test_accepted_donations_cut_own_queries_not_air_time(self):
        fs, tags, sim = self.sessions()
        target = 520e3
        baseline = DecodeSession(query_fn=sim(1).query, decoder=CoherentDecoder(fs))
        result_base = baseline.decode_target(target, max_queries=32)
        assert result_base.success and result_base.n_queries > 1

        donor = sim(7)
        session = DecodeSession(query_fn=sim(1).query, decoder=CoherentDecoder(fs))
        for j in range(8):
            assert session.donate_capture(donor.query(j * 1e-3)) is True
        result = session.decode_target(target, max_queries=32)
        assert result.success
        assert result.packet == result_base.packet
        assert result.n_overheard > 0
        assert result.n_queries < result_base.n_queries
        # Air time counts own queries only — donations are free.
        assert session.total_air_time_s == pytest.approx(
            len(session.captures) * session.decoder.query_period_s
        )
        assert len(session.captures) == result.n_queries

    def test_probe_rejects_target_absent_captures(self):
        fs, tags, sim = self.sessions()
        from repro.channel.antenna import TriangleArray
        from repro.channel.collision import StaticCollisionSimulator
        from repro.channel.noise import thermal_noise_power_w
        from repro.channel.propagation import LosChannel
        from tests.conftest import make_tag

        # A donor scene with *different* tags: no spike at the target CFO.
        other = [
            make_tag(150e3, position_m=(3.0, -6.0, 1.0), seed=77),
        ]
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        donor = StaticCollisionSimulator(
            other,
            array.positions_m,
            LosChannel(),
            noise_power_w=40 * thermal_noise_power_w(fs),
            rng=3,
        )
        session = DecodeSession(query_fn=sim(1).query, decoder=CoherentDecoder(fs))
        for j in range(4):
            session.donate_capture(donor.query(j * 1e-3))
        result = session.decode_target(520e3, max_queries=32)
        assert result.success
        assert result.n_overheard == 0  # every donation failed the probe


@pytest.mark.slow
class TestCorridorOverheard:
    def test_harvested_windows_never_overlap_own_capture_slots(self):
        corridor = small_corridor(seed=17, opportunistic="accept")
        result = corridor.run(6.0)
        assert result.overheard_harvested > 0
        own_windows = {}
        for query in corridor.air.queries():
            own_windows.setdefault(query.source, []).append(
                (query.end_s + 100e-6, query.end_s + 100e-6 + 512e-6)
            )
        for station, origin, _, start_s, end_s, _ in corridor._overheard_log:
            assert origin != station
            for w_lo, w_hi in own_windows.get(station, []):
                assert not (start_s < w_hi and w_lo < end_s), (
                    f"{station} harvested a window overlapping its own "
                    f"capture slot [{w_lo}, {w_hi}]"
                )

    def test_harvested_windows_back_onto_air_log_provenance(self):
        """Every harvested window is real response energy: the air log
        holds response transmissions triggered by the window's origin
        over exactly that interval."""
        corridor = small_corridor(seed=17, opportunistic="accept")
        corridor.run(6.0)
        by_trigger = {}
        for response in corridor.air.responses():
            by_trigger.setdefault(
                (response.triggered_by, response.start_s, response.end_s), 0
            )
            by_trigger[(response.triggered_by, response.start_s, response.end_s)] += 1
        for _, origin, _, start_s, end_s, _ in corridor._overheard_log:
            assert (origin, start_s, end_s) in by_trigger

    def test_accept_uses_overheard_evidence_on_overlap_traffic(self):
        """With cars spread across the corridor (every pole has overlap
        traffic), harvested windows actually feed combiners."""
        scene, trajectories = city_corridor_scene(
            n_poles=3,
            pole_spacing_m=35.0,
            n_cars=12,
            entry="spread",
            speed_range_m_s=(10.0, 16.0),
            rng=23,
        )
        from repro.sim.city import CityCorridor

        corridor = CityCorridor.build(
            scene,
            trajectories,
            lane_ys_m=(-1.75, -5.25),
            rng=23,
            opportunistic="accept",
            max_queries=16,
        )
        result = corridor.run(4.0)
        assert result.overheard_donated > 0
        assert result.ledger.overheard_captures_used() > 0
        assert result.overheard_corrupted_posthoc == 0

    def test_ignore_never_harvests(self):
        corridor = small_corridor(seed=17, opportunistic="ignore")
        result = corridor.run(6.0)
        assert result.opportunistic == "ignore"
        assert result.overheard_windows > 0  # publishing still happens
        assert result.overheard_harvested == 0
        assert result.overheard_donated == 0
        assert result.ledger.overheard_captures_used() == 0


@pytest.mark.slow
class TestIgnoreIsBitForBitPrePool:
    """The ablation contract: ``opportunistic="ignore"`` reproduces the
    corridor as it behaved before the response pool existed, bit for bit
    (ledger digests and headline counters pinned from the pre-pool
    tree)."""

    @pytest.mark.parametrize("seed", [17, 41])
    def test_golden_ledger_and_counters(self, seed):
        result = small_corridor(seed=seed, opportunistic="ignore").run(6.0)
        rows = [
            tuple(getattr(record, f) for f in GOLDEN_FIELDS)
            for record in result.ledger.records
        ]
        digest = hashlib.sha256(repr(rows).encode()).hexdigest()
        assert digest == GOLDEN_LEDGER_SHA256[seed], (
            "opportunistic='ignore' diverged from the pre-pool corridor"
        )
        summary = result.summary()
        for key, expected in GOLDEN_SUMMARY[seed].items():
            assert summary[key] == expected, f"{key} diverged"
