"""Unit tests for repro.core.decoding (§8)."""

import numpy as np
import pytest

from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.noise import thermal_noise_power_w
from repro.channel.propagation import LosChannel
from repro.core.cfo import extract_cfo_peaks
from repro.core.decoding import CoherentDecoder, DecodeSession, MultiTargetCombiner
from repro.errors import DecodingError
from repro.phy.waveform import Waveform
from tests.conftest import make_tag

FS = 4e6
NOISE_W = thermal_noise_power_w(FS)


def build_sim(cfos, seed=0, positions=None):
    rng = np.random.default_rng(seed)
    tags = []
    for i, cfo in enumerate(cfos):
        pos = positions[i] if positions else (rng.uniform(-8, 8), rng.uniform(-11, -7), 1.0)
        tags.append(make_tag(cfo, position_m=pos, seed=50 + i))
    array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
    sim = StaticCollisionSimulator(
        tags, array.positions_m, LosChannel(), noise_power_w=NOISE_W, rng=seed
    )
    return sim, tags


class TestCoherentDecoder:
    def test_single_tag_decodes_in_one_query(self):
        sim, tags = build_sim([400e3], seed=1)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(0.0).antenna(0)]
        result = decoder.decode(captures, 400e3)
        assert result.success
        assert result.n_queries == 1
        assert result.packet == tags[0].packet

    def test_two_tags_need_few_queries(self):
        sim, tags = build_sim([300e3, 800e3], seed=2)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(16)]
        result = decoder.decode(captures, 300e3)
        assert result.success
        assert result.n_queries <= 16
        assert result.packet == tags[0].packet

    def test_decodes_correct_tag_of_five(self):
        cfos = [150e3, 400e3, 650e3, 900e3, 1150e3]
        sim, tags = build_sim(cfos, seed=3)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(48)]
        result = decoder.decode(captures, 650e3)
        assert result.success
        assert result.packet == tags[2].packet

    def test_identification_time_metric(self):
        sim, _ = build_sim([500e3], seed=4)
        decoder = CoherentDecoder(FS, query_period_s=1e-3)
        result = decoder.decode([sim.query(0.0).antenna(0)], 500e3)
        assert result.identification_time_ms == pytest.approx(1.0)

    def test_budget_exhaustion_returns_failure(self):
        """A target CFO pointing at empty spectrum can never decode."""
        sim, _ = build_sim([300e3], seed=5)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(4)]
        result = decoder.decode(captures, 1_000_000.0)
        assert not result.success
        assert result.n_queries == 4

    def test_no_captures_rejected(self):
        with pytest.raises(DecodingError):
            CoherentDecoder(FS).decode([], 100e3)

    def test_more_queries_help_more_tags(self):
        """Fig 16's mechanism: queries needed grow with collision size."""
        decoder = CoherentDecoder(FS)
        needed = {}
        for m in (1, 4):
            rng = np.random.default_rng(40 + m)
            cfos = list(rng.uniform(50e3, 1.15e6, size=m))
            sim, tags = build_sim(cfos, seed=40 + m)
            captures = [sim.query(i * 1e-3).antenna(0) for i in range(64)]
            result = decoder.decode(captures, cfos[0])
            assert result.success
            needed[m] = result.n_queries
        assert needed[4] >= needed[1]


def count_demod_attempts(decoder):
    """Instrument a decoder to count its ``_try_demodulate`` calls."""
    counter = {"calls": 0}
    original = decoder._try_demodulate

    def counting(accumulator=None, bits=None):
        counter["calls"] += 1
        return original(accumulator, bits=bits)

    decoder._try_demodulate = counting
    return counter


class TestMultiTargetCombiner:
    def test_decode_many_matches_reference(self):
        """The batched path must reproduce the reference decoder exactly:
        same packets, same query counts, per target."""
        cfos = [150e3, 400e3, 650e3, 900e3, 1150e3]
        sim, _ = build_sim(cfos, seed=20)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(48)]
        batched = decoder.decode_many(captures, cfos)
        for cfo in cfos:
            reference = decoder.decode(captures, cfo)
            assert batched[cfo].packet == reference.packet
            assert batched[cfo].n_queries == reference.n_queries
            assert batched[cfo].cfo_hz == pytest.approx(reference.cfo_hz)

    def test_decode_many_min_queries(self):
        sim, _ = build_sim([500e3], seed=21)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(8)]
        results = decoder.decode_many(captures, [500e3], min_queries=4)
        assert results[500e3].success
        assert results[500e3].n_queries >= 4

    def test_zero_channel_estimate_rejected(self):
        decoder = CoherentDecoder(FS)
        combiner = MultiTargetCombiner(decoder, 2048)
        keys = combiner.add_targets([300e3])
        silent = Waveform(np.zeros(2048, dtype=np.complex128), FS)
        with pytest.raises(DecodingError):
            combiner.advance(keys, [silent], 1)

    def test_capture_length_mismatch_rejected(self):
        decoder = CoherentDecoder(FS)
        combiner = MultiTargetCombiner(decoder, 2048)
        keys = combiner.add_targets([300e3])
        short = Waveform(np.ones(1024, dtype=np.complex128), FS)
        with pytest.raises(DecodingError):
            combiner.advance(keys, [short], 1)

    def test_demod_attempted_once_per_capture_count(self):
        """Regression for the quadratic seed behavior: geometric budget
        doubling must not re-attempt demodulation at counts already tried,
        so a session pays exactly one attempt per (target, capture count)."""
        sim, _ = build_sim([300e3, 800e3], seed=22)
        decoder = CoherentDecoder(FS)
        counter = count_demod_attempts(decoder)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        # An empty-spectrum target can never decode: every capture count up
        # to the budget is attempted exactly once (the seed path would pay
        # 1 + 2 + 4 + 8 = 15 attempts for the same outcome).
        result = session.decode_target(1_000_000.0, max_queries=8)
        assert not result.success
        assert counter["calls"] == 8
        # Re-asking with the same budget repeats nothing.
        session.decode_target(1_000_000.0, max_queries=8)
        assert counter["calls"] == 8

    def test_budget_doubling_resumes_incrementally(self):
        sim, _ = build_sim([300e3, 800e3], seed=23)
        decoder = CoherentDecoder(FS)
        counter = count_demod_attempts(decoder)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        first = session.decode_target(1_000_000.0, max_queries=4)
        assert not first.success and counter["calls"] == 4
        # A larger budget resumes at capture 5, not from scratch.
        second = session.decode_target(1_000_000.0, max_queries=16)
        assert not second.success
        assert counter["calls"] == 16

    def test_zero_budget_still_accounts_the_mandatory_query(self):
        """A decode attempt always puts one query on the air; the result
        must say so even for a degenerate budget."""
        sim, _ = build_sim([300e3], seed=27)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=CoherentDecoder(FS))
        result = session.decode_target(1_000_000.0, max_queries=0)
        assert not result.success
        assert result.n_queries == 1
        assert session.total_air_time_s == pytest.approx(1e-3)

    def test_seed_capture_reuses_air_time(self):
        sim, _ = build_sim([300e3], seed=28)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=CoherentDecoder(FS))
        donated = sim.query(0.0)
        session.seed_capture(donated)
        result = session.decode_target(300e3, max_queries=8)
        assert result.success
        assert session.captures[0] is donated

    def test_seed_capture_accepts_bare_waveform(self):
        """Legacy callers may donate one antenna's waveform; the session
        treats it as a one-antenna collision."""
        sim, _ = build_sim([300e3], seed=28)
        session = DecodeSession(
            query_fn=lambda t: sim.query(t).antenna(0),
            decoder=CoherentDecoder(FS),
        )
        donated = sim.query(0.0).antenna(0)
        session.seed_capture(donated)
        result = session.decode_target(300e3, max_queries=8)
        assert result.success
        assert session.captures[0] is donated

    def test_successful_target_attempts_every_count_once(self):
        sim, tags = build_sim([300e3, 800e3], seed=24)
        decoder = CoherentDecoder(FS)
        counter = count_demod_attempts(decoder)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        result = session.decode_target(300e3, max_queries=32)
        assert result.success
        assert counter["calls"] == result.n_queries


class TestDecodeSession:
    def test_decode_all_from_shared_stream(self):
        cfos = [200e3, 500e3, 800e3]
        sim, tags = build_sim(cfos, seed=6)
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        results = session.decode_all(cfos, max_queries=64)
        assert all(r.success for r in results.values())
        decoded = {r.packet.tag_id for r in results.values()}
        assert decoded == {t.packet.tag_id for t in tags}

    def test_captures_shared_between_targets(self):
        """Decoding the second tag must not issue a fresh capture set
        (§12.4: decoding all tags costs the same air time as one)."""
        cfos = [250e3, 750e3]
        sim, _ = build_sim(cfos, seed=7)
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        session.decode_target(cfos[0], max_queries=32)
        captures_after_first = len(session.captures)
        session.decode_target(cfos[1], max_queries=32)
        # Second target may extend, but must start from the shared pool.
        assert len(session.captures) >= captures_after_first
        assert session.total_air_time_s == pytest.approx(len(session.captures) * 1e-3)

    def test_decode_all_matches_reference_decoder(self):
        """The session's batched pipeline (ablation policy) and the
        reference single-target decoder must agree on every packet and
        query count (§12.4)."""
        cfos = [200e3, 500e3, 800e3]
        sim, _ = build_sim(cfos, seed=25)
        decoder = CoherentDecoder(FS)
        session = DecodeSession(
            query_fn=lambda t: sim.query(t), decoder=decoder, combining="single"
        )
        results = session.decode_all(cfos, max_queries=64)
        waves = [c.antenna(0) for c in session.captures]
        for cfo in cfos:
            reference = decoder.decode(waves, cfo)
            assert results[cfo].packet == reference.packet
            assert results[cfo].n_queries == reference.n_queries

    def test_decode_all_empty_is_a_no_op(self):
        queries = []

        def query_fn(t):
            queries.append(t)
            raise AssertionError("no query should be issued")

        session = DecodeSession(query_fn=query_fn, decoder=CoherentDecoder(FS))
        assert session.decode_all([]) == {}
        assert queries == []
        assert session.total_air_time_s == 0.0

    def test_duplicate_targets_do_not_corrupt_others(self):
        """Regression: duplicated CFOs in one batch must not double-combine
        captures into other targets' accumulators."""
        cfos = [250e3, 750e3]
        sim, _ = build_sim(cfos, seed=29)
        decoder = CoherentDecoder(FS)
        session = DecodeSession(
            query_fn=lambda t: sim.query(t), decoder=decoder, combining="single"
        )
        results = session.decode_all([cfos[0], cfos[0], cfos[1]], max_queries=32)
        assert all(r.success for r in results.values())
        # Every result must still match the reference decoder exactly.
        waves = [c.antenna(0) for c in session.captures]
        for cfo in cfos:
            reference = decoder.decode(waves, cfo)
            assert results[cfo].packet == reference.packet
            assert results[cfo].n_queries == reference.n_queries

    def test_session_result_cached_after_success(self):
        cfos = [250e3, 750e3]
        sim, _ = build_sim(cfos, seed=26)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=CoherentDecoder(FS))
        first = session.decode_target(cfos[0], max_queries=32)
        assert first.success
        again = session.decode_target(cfos[0], max_queries=32)
        assert again.packet == first.packet
        assert again.n_queries == first.n_queries

    def test_uses_detected_peaks(self):
        cfos = [350e3, 950e3]
        sim, tags = build_sim(cfos, seed=8)
        peaks = extract_cfo_peaks(sim.query(0.0).antenna(0), min_snr_db=15)
        assert len(peaks) == 2
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        results = session.decode_all([p.cfo_hz for p in peaks], max_queries=64)
        assert {r.packet.tag_id for r in results.values() if r.success} == {
            t.packet.tag_id for t in tags
        }


class TestDeprecatedAntennaIndexAlias:
    """The ``antenna_index`` alias must warn *and* keep matching the
    ``combining="single"`` numerics exactly — a silent divergence of the
    deprecated spelling is a correctness bug, not a deprecation."""

    def replay(self, session, pool, cfos):
        captures = iter(pool)

        def ensure(n):
            while len(session.captures) < n:
                session.captures.append(next(captures))

        session._ensure_captures = ensure
        return session.decode_all(cfos, max_queries=32)

    def test_warns_on_every_owner(self):
        from repro.core.network import ReaderStation
        from repro.sim.city import CorridorStation

        with pytest.warns(DeprecationWarning, match="antenna_index"):
            # repro: allow[ablation-api] — deprecation coverage exercises the alias on purpose
            DecodeSession(query_fn=None, decoder=CoherentDecoder(FS), antenna_index=0)
        with pytest.warns(DeprecationWarning, match="antenna_index"):
            # repro: allow[ablation-api] — deprecation coverage exercises the alias on purpose
            ReaderStation(name="p", reader=None, query_fn=None, antenna_index=0)
        with pytest.warns(DeprecationWarning, match="antenna_index"):
            CorridorStation(
                # repro: allow[ablation-api] — deprecation coverage exercises the alias on purpose
                name="p", reader=None, source=None, cell=None, antenna_index=0
            )

    def test_alias_matches_single_policy_bit_for_bit(self):
        cfos = [200e3, 500e3, 800e3]
        sim, _ = build_sim(cfos, seed=11)
        pool = [sim.query(i * 1e-3) for i in range(32)]
        decoder = CoherentDecoder(FS)

        single = DecodeSession(
            query_fn=None, decoder=decoder, combining="single"
        )
        with pytest.warns(DeprecationWarning):
            # repro: allow[ablation-api] — deprecation coverage exercises the alias on purpose
            aliased = DecodeSession(query_fn=None, decoder=decoder, antenna_index=0)
        assert aliased.combining == "single"

        results_single = self.replay(single, pool, cfos)
        results_alias = self.replay(aliased, pool, cfos)
        for cfo in cfos:
            a, s = results_alias[cfo], results_single[cfo]
            assert a.packet == s.packet
            assert a.n_queries == s.n_queries
            assert a.cfo_hz == s.cfo_hz  # identical refinement
            assert np.array_equal(a.channels, s.channels)  # bitwise
        # Identical accumulator state, not just identical outcomes.
        assert np.array_equal(aliased._combiner._acc, single._combiner._acc)


class TestMultiAntennaChannels:
    """Satellite coverage: per-antenna Eq 5 readout vs synthesis truth,
    and the MRC-vs-single SNR gain the whole refactor exists for."""

    def lone_tag_sim(self, noise_factor=1.0, seed=9):
        from repro.channel.antenna import TriangleArray
        from repro.channel.propagation import LosChannel

        tag = make_tag(500e3, position_m=(2.0, -9.0, 1.0), seed=70)
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
        return StaticCollisionSimulator(
            [tag],
            array.positions_m,
            LosChannel(),
            noise_power_w=NOISE_W * noise_factor,
            rng=seed,
        )

    def test_eq5_readout_matches_truth_per_antenna(self):
        """The Eq 5 channel readout at the true CFO must reproduce the
        synthesized ground-truth channel of every antenna."""
        from repro.core.cfo import estimate_channel

        collision = self.lone_tag_sim().query(0.0)
        entry = collision.truth[0]
        cfo = entry.cfo_hz(collision.lo_hz)
        for a, wave in enumerate(collision.antennas):
            estimate = estimate_channel(wave, cfo)
            truth = entry.channels[a]
            assert abs(np.angle(estimate / truth)) < 0.02
            assert abs(estimate) == pytest.approx(abs(truth), rel=0.05)

    def test_combiner_channel_estimates_match_truth_per_antenna(self):
        """The MRC combiner's per-antenna readout of its latest capture is
        the same Eq 5 estimate — phases match the capture's truth."""
        sim = self.lone_tag_sim()
        collision = sim.query(0.0)
        decoder = CoherentDecoder(FS)
        combiner = MultiTargetCombiner(decoder, collision.antennas[0].n_samples)
        key = combiner.add_target(collision.truth[0].cfo_hz(collision.lo_hz))
        assert combiner.channel_estimates(key) is None  # nothing combined yet
        combiner.advance([key], [collision], 1, min_queries=2)
        estimates = combiner.channel_estimates(key)
        truth = collision.truth[0].channels
        assert estimates.shape == truth.shape
        for estimate, channel in zip(estimates, truth):
            assert abs(np.angle(estimate / channel)) < 0.02
            assert abs(estimate) == pytest.approx(abs(channel), rel=0.05)

    def test_decode_result_channels_match_truth_ratios(self):
        """DecodeResult.channels accumulates cross-antenna evidence whose
        ratios converge on the true channel ratios — the Eq 10 phases."""
        sim = self.lone_tag_sim()
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=CoherentDecoder(FS))
        result = session.decode_target(500e3, max_queries=8)
        assert result.success
        assert result.n_antennas == 3
        truth = session.captures[0].truth[0].channels
        for a in range(1, 3):
            measured = result.channels[a] / result.channels[0]
            expected = truth[a] / truth[0]
            assert abs(np.angle(measured / expected)) < 0.05

    def test_mrc_snr_gain_at_low_snr(self):
        """Three antennas of comparable gain buy ~3x accumulator SNR over
        the single-antenna baseline at identical captures."""
        sim = self.lone_tag_sim(noise_factor=30_000)
        pool = [sim.query(i * 1e-3) for i in range(8)]
        decoder = CoherentDecoder(FS)
        template = pool[0].truth[0].response.baseband.real  # OOK chips
        centered = template - template.mean()
        snr = {}
        for policy in ("single", "mrc"):
            combiner = MultiTargetCombiner(
                decoder, pool[0].antennas[0].n_samples, combining=policy
            )
            keys = combiner.add_targets([pool[0].truth[0].cfo_hz(pool[0].lo_hz)])
            combiner.advance(keys, pool, len(pool), min_queries=len(pool) + 1)
            row = (
                combiner._phasors[keys[0]] * combiner._reduced(np.array(keys))[0]
            ).real
            gain = np.dot(row, centered) / np.dot(centered, centered)
            residual = row - row.mean() - gain * centered
            snr[policy] = (
                gain * gain * np.dot(centered, centered) / np.dot(residual, residual)
            )
        assert snr["mrc"] > 2.0 * snr["single"]

    def test_mrc_decodes_in_fewer_queries_at_low_snr(self):
        cfos = [300e3, 800e3]
        queries = {}
        for policy in ("single", "mrc"):
            sim, _ = build_sim(cfos, seed=5)
            sim.noise_power_w = thermal_noise_power_w(FS) * 30_000
            session = DecodeSession(
                query_fn=lambda t: sim.query(t),
                decoder=CoherentDecoder(FS),
                combining=policy,
            )
            results = session.decode_all(cfos, max_queries=64)
            assert all(r.success for r in results.values())
            queries[policy] = sum(r.n_queries for r in results.values())
        assert queries["mrc"] < queries["single"]

    def test_waveform_seed_then_collision_stream_decodes(self):
        """Regression: a legacy one-antenna seed into a default (MRC)
        session whose stream yields 3-antenna collisions must combine,
        not crash — the combiner grows antenna rows per capture."""
        cfos = [300e3, 800e3]
        sim, tags = build_sim(cfos, seed=5)
        sim.noise_power_w = thermal_noise_power_w(FS) * 30_000
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=CoherentDecoder(FS))
        session.seed_capture(sim.query(0.0).antenna(0))
        results = session.decode_all(cfos, max_queries=64)
        assert all(r.success for r in results.values())
        assert {r.packet.tag_id for r in results.values()} == {
            t.packet.tag_id for t in tags
        }
        # Later 3-antenna captures widened the evidence to all antennas.
        assert max(r.n_antennas for r in results.values() if r.n_queries > 1) == 3
