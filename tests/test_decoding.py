"""Unit tests for repro.core.decoding (§8)."""

import numpy as np
import pytest

from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.noise import thermal_noise_power_w
from repro.channel.propagation import LosChannel
from repro.core.cfo import extract_cfo_peaks
from repro.core.decoding import CoherentDecoder, DecodeSession
from repro.errors import DecodingError
from tests.conftest import make_tag

FS = 4e6
NOISE_W = thermal_noise_power_w(FS)


def build_sim(cfos, seed=0, positions=None):
    rng = np.random.default_rng(seed)
    tags = []
    for i, cfo in enumerate(cfos):
        pos = positions[i] if positions else (rng.uniform(-8, 8), rng.uniform(-11, -7), 1.0)
        tags.append(make_tag(cfo, position_m=pos, seed=50 + i))
    array = TriangleArray.street_pole(np.array([0.0, 0.0, 3.8]))
    sim = StaticCollisionSimulator(
        tags, array.positions_m, LosChannel(), noise_power_w=NOISE_W, rng=seed
    )
    return sim, tags


class TestCoherentDecoder:
    def test_single_tag_decodes_in_one_query(self):
        sim, tags = build_sim([400e3], seed=1)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(0.0).antenna(0)]
        result = decoder.decode(captures, 400e3)
        assert result.success
        assert result.n_queries == 1
        assert result.packet == tags[0].packet

    def test_two_tags_need_few_queries(self):
        sim, tags = build_sim([300e3, 800e3], seed=2)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(16)]
        result = decoder.decode(captures, 300e3)
        assert result.success
        assert result.n_queries <= 16
        assert result.packet == tags[0].packet

    def test_decodes_correct_tag_of_five(self):
        cfos = [150e3, 400e3, 650e3, 900e3, 1150e3]
        sim, tags = build_sim(cfos, seed=3)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(48)]
        result = decoder.decode(captures, 650e3)
        assert result.success
        assert result.packet == tags[2].packet

    def test_identification_time_metric(self):
        sim, _ = build_sim([500e3], seed=4)
        decoder = CoherentDecoder(FS, query_period_s=1e-3)
        result = decoder.decode([sim.query(0.0).antenna(0)], 500e3)
        assert result.identification_time_ms == pytest.approx(1.0)

    def test_budget_exhaustion_returns_failure(self):
        """A target CFO pointing at empty spectrum can never decode."""
        sim, _ = build_sim([300e3], seed=5)
        decoder = CoherentDecoder(FS)
        captures = [sim.query(i * 1e-3).antenna(0) for i in range(4)]
        result = decoder.decode(captures, 1_000_000.0)
        assert not result.success
        assert result.n_queries == 4

    def test_no_captures_rejected(self):
        with pytest.raises(DecodingError):
            CoherentDecoder(FS).decode([], 100e3)

    def test_more_queries_help_more_tags(self):
        """Fig 16's mechanism: queries needed grow with collision size."""
        decoder = CoherentDecoder(FS)
        needed = {}
        for m in (1, 4):
            rng = np.random.default_rng(40 + m)
            cfos = list(rng.uniform(50e3, 1.15e6, size=m))
            sim, tags = build_sim(cfos, seed=40 + m)
            captures = [sim.query(i * 1e-3).antenna(0) for i in range(64)]
            result = decoder.decode(captures, cfos[0])
            assert result.success
            needed[m] = result.n_queries
        assert needed[4] >= needed[1]


class TestDecodeSession:
    def test_decode_all_from_shared_stream(self):
        cfos = [200e3, 500e3, 800e3]
        sim, tags = build_sim(cfos, seed=6)
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        results = session.decode_all(cfos, max_queries=64)
        assert all(r.success for r in results.values())
        decoded = {r.packet.tag_id for r in results.values()}
        assert decoded == {t.packet.tag_id for t in tags}

    def test_captures_shared_between_targets(self):
        """Decoding the second tag must not issue a fresh capture set
        (§12.4: decoding all tags costs the same air time as one)."""
        cfos = [250e3, 750e3]
        sim, _ = build_sim(cfos, seed=7)
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        session.decode_target(cfos[0], max_queries=32)
        captures_after_first = len(session.captures)
        session.decode_target(cfos[1], max_queries=32)
        # Second target may extend, but must start from the shared pool.
        assert len(session.captures) >= captures_after_first
        assert session.total_air_time_s == pytest.approx(len(session.captures) * 1e-3)

    def test_uses_detected_peaks(self):
        cfos = [350e3, 950e3]
        sim, tags = build_sim(cfos, seed=8)
        peaks = extract_cfo_peaks(sim.query(0.0).antenna(0), min_snr_db=15)
        assert len(peaks) == 2
        decoder = CoherentDecoder(FS)
        session = DecodeSession(query_fn=lambda t: sim.query(t), decoder=decoder)
        results = session.decode_all([p.cfo_hz for p in peaks], max_queries=64)
        assert {r.packet.tag_id for r in results.values() if r.success} == {
            t.packet.tag_id for t in tags
        }
