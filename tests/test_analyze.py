"""The static analysis suite: every rule catches its bad fixture and
passes its good one; pragmas and the baseline suppress as documented;
the committed tree is clean under the committed baseline."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.analyze import all_checkers, get_checker  # noqa: E402
from tools.analyze.core import ModuleInfo, run_analysis  # noqa: E402
from tools.analyze.checkers.units import unit_of_name  # noqa: E402


def check(source: str, rule: str, rel_path: str = "src/repro/fake_mod.py"):
    """Run one checker over an inline snippet, honoring pragmas."""
    source = textwrap.dedent(source)
    module = ModuleInfo(Path(rel_path), rel_path, source)
    checker = get_checker(rule)
    return [
        f for f in checker.check(module) if not module.allowed(f.line, f.rule)
    ]


class TestDeterminismChecker:
    def test_unseeded_default_rng_flagged(self):
        bad = """\
        import numpy as np
        rng = np.random.default_rng()
        """
        assert len(check(bad, "determinism")) == 1

    def test_default_rng_none_flagged(self):
        assert check("import numpy as np\nr = np.random.default_rng(None)\n", "determinism")

    def test_seeded_default_rng_clean(self):
        good = """\
        import numpy as np
        rng = np.random.default_rng(1234)
        """
        assert check(good, "determinism") == []

    def test_legacy_global_state_flagged(self):
        bad = """\
        import numpy as np
        np.random.seed(0)
        x = np.random.normal(0.0, 1.0)
        """
        assert len(check(bad, "determinism")) == 2

    def test_stdlib_random_flagged(self):
        bad = """\
        import random
        x = random.random()
        """
        assert len(check(bad, "determinism")) == 1

    def test_stdlib_random_from_import_flagged(self):
        assert check("from random import shuffle\n", "determinism")

    def test_wall_clock_flagged_in_library_only(self):
        bad = """\
        import time
        def stamp():
            return time.time()
        """
        assert len(check(bad, "determinism")) == 1
        # The same code outside src/ (a benchmark timing itself) is fine.
        assert check(bad, "determinism", rel_path="benchmarks/bench_fake.py") == []

    def test_as_rng_none_flagged_in_library(self):
        bad = """\
        from repro.utils import as_rng
        RNG = as_rng(None)
        """
        assert len(check(bad, "determinism")) == 1

    def test_stream_discipline_flagged(self):
        bad = """\
        import numpy as np
        def simulate(n, rng):
            fresh = np.random.default_rng(7)
            return fresh.normal(size=n)
        """
        found = check(bad, "determinism")
        assert len(found) == 1
        assert "stream" in found[0].message or "fresh generator" in found[0].message

    def test_stream_discipline_spawn_clean(self):
        good = """\
        from repro.utils import as_rng
        def simulate(n, rng):
            rng = as_rng(rng)
            child = rng.spawn(1)[0]
            return child.normal(size=n)
        """
        assert check(good, "determinism") == []

    def test_nested_function_not_misattributed(self):
        # The inner function has no rng of its own to violate; the outer
        # one never mints — no finding either way.
        good = """\
        import numpy as np
        def outer(rng):
            def inner(seed):
                return np.random.default_rng(seed)
            return inner
        """
        assert check(good, "determinism") == []


class TestUnitSuffixChecker:
    def test_cross_unit_add_flagged(self):
        assert check("total = dist_m + dur_s\n", "unit-suffix")

    def test_cross_scale_add_flagged(self):
        # Same dimension, different scale: still a missing conversion.
        assert check("t = window_s + guard_ms\n", "unit-suffix")

    def test_cross_unit_compare_flagged(self):
        assert check("ok = span_s > rate_hz\n", "unit-suffix")

    def test_cross_unit_keyword_flagged(self):
        found = check("f(period_s=carrier_hz)\n", "unit-suffix")
        assert len(found) == 1
        assert "period_s" in found[0].message

    def test_cross_unit_alias_flagged(self):
        assert check("offset_hz = delay_s\n", "unit-suffix")

    def test_augmented_accumulate_flagged(self):
        assert check("total_ms = 0.0\ntotal_ms += dwell_s\n", "unit-suffix")

    def test_same_unit_and_conversions_clean(self):
        good = """\
        total_m = near_m + far_m
        speed_m_s = dist_m / dur_s
        period_s = 1.0 / rate_hz
        x = dist_m + 5.0
        f(range_m=dist_m)
        """
        assert check(good, "unit-suffix") == []

    def test_multi_token_suffix_wins(self):
        assert unit_of_name("speed_m_s") == "m/s"
        assert unit_of_name("sigma_s") == "s"
        assert unit_of_name("plain") is None
        # Speed compared against seconds is a mix even though both end _s.
        assert check("ok = limit_m_s > dwell_s\n", "unit-suffix")


class TestRngPolicyChecker:
    def test_direct_construction_flagged(self):
        bad = """\
        import numpy as np
        class Sim:
            def __init__(self, seed):
                self.rng = np.random.default_rng(seed)
        """
        assert len(check(bad, "rng-policy")) == 1

    def test_as_rng_and_spawn_clean(self):
        good = """\
        from repro.utils import as_rng
        class Sim:
            def __init__(self, rng=None):
                self.rng = as_rng(rng)
                self.noise_rng = self.rng.spawn(1)[0]
        """
        assert check(good, "rng-policy") == []

    def test_dataclass_field_outside_funnel_flagged(self):
        bad = """\
        import numpy as np
        from dataclasses import dataclass, field
        @dataclass
        class Sim:
            rng: np.random.Generator = field(default_factory=np.random.default_rng)
        """
        assert len(check(bad, "rng-policy")) == 1

    def test_dataclass_field_through_funnel_clean(self):
        good = """\
        import numpy as np
        from dataclasses import dataclass, field
        from repro.utils import as_rng
        @dataclass
        class Sim:
            rng: np.random.Generator = field(default_factory=lambda: as_rng(None))
        @dataclass
        class Lazy:
            rng: object = None
        """
        assert check(good, "rng-policy") == []

    def test_only_library_code_checked(self):
        bad = "import numpy as np\nclass S:\n    def __init__(self):\n        self.rng = np.random.default_rng(0)\n"
        assert check(bad, "rng-policy", rel_path="tests/test_fake.py") == []


class TestAblationApiChecker:
    def test_undocumented_knob_flagged(self):
        bad = '''\
        def run(scene, combining="mrc"):
            """Run the scene."""
            return scene
        '''
        found = check(bad, "ablation-api")
        assert len(found) == 1
        assert "combining" in found[0].message

    def test_documented_knob_clean(self):
        good = '''\
        def run(scene, combining="mrc"):
            """Run the scene.

            combining: "mrc" (every antenna) or "single" (ablation).
            """
            return scene
        '''
        assert check(good, "ablation-api") == []

    def test_init_falls_back_to_class_docstring(self):
        good = '''\
        class Corridor:
            """A corridor.

            scheduling: "event" or "rounds".
            """
            def __init__(self, scheduling="event"):
                self.scheduling = scheduling
        '''
        assert check(good, "ablation-api") == []

    def test_dataclass_field_without_doc_flagged(self):
        bad = '''\
        from dataclasses import dataclass
        @dataclass
        class Result:
            """A result record."""
            handoff: str
        '''
        found = check(bad, "ablation-api")
        assert len(found) == 1
        assert "handoff" in found[0].message

    def test_deprecated_antenna_index_keyword_flagged(self):
        found = check(
            "session = open_session(antenna_index=2)\n",
            "ablation-api",
            rel_path="examples/fake.py",
        )
        assert len(found) == 1
        assert "antenna_index" in found[0].message

    def test_private_helpers_exempt(self):
        good = """\
        def _forward(combining):
            return combining
        """
        assert check(good, "ablation-api") == []


class TestObsPolicyChecker:
    def test_obs_import_in_library_flagged(self):
        found = check("from repro.obs import Obs\n", "obs-policy")
        assert len(found) == 1
        assert "import" in found[0].message

    def test_obs_submodule_import_flagged(self):
        assert check("from repro.obs.metrics import MetricsRegistry\n", "obs-policy")
        assert check("import repro.obs.trace\n", "obs-policy")

    def test_hook_construction_in_library_flagged(self):
        bad = """\
        class Corridor:
            def __init__(self):
                self.obs = Obs()
        """
        found = check(bad, "obs-policy")
        assert len(found) == 1
        assert "Obs" in found[0].message
        assert check("registry = MetricsRegistry()\n", "obs-policy")
        assert check("tracer = SpanTracer()\n", "obs-policy")

    def test_nullable_hook_threading_clean(self):
        good = """\
        class Corridor:
            def __init__(self, obs=None):
                self.obs = obs
            def step(self):
                if self.obs is not None:
                    self.obs.count("corridor.round", outcome="clean")
        """
        assert check(good, "obs-policy") == []

    def test_obs_package_may_construct_and_import(self):
        good = """\
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import SpanTracer
        def make():
            return MetricsRegistry(), SpanTracer()
        """
        assert check(good, "obs-policy", rel_path="src/repro/obs/__init__.py") == []

    def test_non_library_code_exempt(self):
        bad = "from repro.obs import Obs\nobs = Obs()\n"
        for rel_path in (
            "tests/test_fake.py",
            "benchmarks/bench_fake.py",
            "examples/fake.py",
        ):
            assert check(bad, "obs-policy", rel_path=rel_path) == []

    def test_wall_clock_reference_in_obs_package_flagged(self):
        # A mere reference — storing the clock as a default timer — is a
        # breach even though no call happens at module import.
        bad = """\
        import time
        DEFAULT_TIMER = time.perf_counter
        """
        found = check(bad, "obs-policy", rel_path="src/repro/obs/metrics.py")
        assert len(found) == 1
        assert "perf_counter" in found[0].message
        # The same reference elsewhere in the library is this rule's
        # non-problem (determinism owns call sites there).
        assert check(bad, "obs-policy") == []

    def test_pragma_suppresses(self):
        src = "from repro.obs import Obs  # repro: allow[obs-policy] — demo\n"
        assert check(src, "obs-policy") == []


class TestParallelPolicyChecker:
    def test_multiprocessing_import_in_library_flagged(self):
        found = check("import multiprocessing\n", "parallel-policy")
        assert len(found) == 1
        assert "sharding engine" in found[0].message

    def test_concurrent_futures_flagged_in_every_form(self):
        assert check("import concurrent.futures\n", "parallel-policy")
        assert check("from concurrent import futures\n", "parallel-policy")
        assert check(
            "from concurrent.futures import ProcessPoolExecutor\n",
            "parallel-policy",
        )
        assert check("import threading\n", "parallel-policy")

    def test_engine_module_exempt(self):
        good = "import multiprocessing\nfrom concurrent import futures\n"
        assert (
            check(
                good,
                "parallel-policy",
                rel_path="src/repro/sim/city/parallel.py",
            )
            == []
        )

    def test_non_library_code_exempt(self):
        bad = "import multiprocessing\n"
        for rel_path in (
            "tests/test_fake.py",
            "benchmarks/bench_fake.py",
            "examples/fake.py",
            "tools/fake.py",
        ):
            assert check(bad, "parallel-policy", rel_path=rel_path) == []

    def test_innocent_imports_clean(self):
        good = """\
        import itertools
        from dataclasses import dataclass
        """
        assert check(good, "parallel-policy") == []

    def test_pragma_suppresses(self):
        src = "import threading  # repro: allow[parallel-policy] — demo\n"
        assert check(src, "parallel-policy") == []


class TestBackhaulPolicyChecker:
    def test_direct_directory_report_flagged(self):
        bad = """\
        def on_sighting(self, directory, tag_id):
            directory.report(tag_id, 0.0, "s", "z", 0.0, 1.0)
        """
        found = check(bad, "backhaul-policy")
        assert len(found) == 1
        assert "BackhaulPlane" in found[0].message

    def test_attribute_receivers_flagged(self):
        bad = """\
        class Mesh:
            def run(self):
                self.directory.resolve(1.0, now_s=2.0)
                self.mesh._directory.apply_delta(7, 0.0, "s", "z", 0.0, 1.0)
        """
        assert len(check(bad, "backhaul-policy")) == 2

    def test_sanctioned_modules_exempt(self):
        good = "def f(directory):\n    directory.report(1, 0.0, 's', 'z', 0.0, 1.0)\n"
        for rel_path in (
            "src/repro/sim/city/backhaul.py",
            "src/repro/sim/city/directory.py",
            "src/repro/apps/tolling/backend.py",
            "src/repro/apps/tolling/__main__.py",
        ):
            assert check(good, "backhaul-policy", rel_path=rel_path) == []

    def test_non_library_code_exempt(self):
        bad = "def f(directory):\n    directory.report(1, 0.0, 's', 'z', 0.0, 1.0)\n"
        for rel_path in ("tests/test_fake.py", "benchmarks/bench_fake.py"):
            assert check(bad, "backhaul-policy", rel_path=rel_path) == []

    def test_other_receivers_clean(self):
        # Per-pole caches and modeled backends have the same method
        # names; only directory receivers are the guarded surface.
        good = """\
        def f(self, cache, backend):
            cache.resolve(1.0, now_s=2.0)
            backend.report(1, 0.0, "s", "z", 0.0, 1.0)
            self.plane.submit(1.0, "z", "s", 1, 0.0, 0.0, True)
            report(1, 0.0)
        """
        assert check(good, "backhaul-policy") == []

    def test_pragma_suppresses(self):
        src = (
            "def f(directory):\n"
            "    directory.resolve(1.0, now_s=0.0)"
            "  # repro: allow[backhaul-policy] — fixture\n"
        )
        assert check(src, "backhaul-policy") == []


class TestUnusedImportChecker:
    def test_unused_import_flagged(self):
        assert len(check("import os\nimport sys\nprint(sys.argv)\n", "unused-import")) == 1

    def test_all_and_noqa_exempt(self):
        good = """\
        import os  # noqa
        from repro import utils
        __all__ = ["utils"]
        """
        assert check(good, "unused-import") == []

    def test_init_py_skipped(self):
        assert (
            check("import os\n", "unused-import", rel_path="src/repro/__init__.py")
            == []
        )


class TestPragmasAndBaseline:
    def test_same_line_pragma_suppresses(self):
        src = "import numpy as np\nr = np.random.default_rng()  # repro: allow[determinism] — demo\n"
        assert check(src, "determinism") == []

    def test_preceding_comment_pragma_suppresses(self):
        src = (
            "import numpy as np\n"
            "# repro: allow[determinism] — demo\n"
            "r = np.random.default_rng()\n"
        )
        assert check(src, "determinism") == []

    def test_wrong_rule_pragma_does_not_suppress(self):
        src = "import numpy as np\nr = np.random.default_rng()  # repro: allow[unit-suffix]\n"
        assert len(check(src, "determinism")) == 1

    def test_baseline_moves_findings_aside(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import numpy as np\nr = np.random.default_rng()\n")
        fresh = run_analysis([target], rules=["determinism"])
        assert len(fresh.new) == 1
        baseline = {f.key() for f in fresh.new}
        rerun = run_analysis([target], rules=["determinism"], baseline=baseline)
        assert rerun.new == [] and len(rerun.baselined) == 1

    def test_registry_has_all_rules(self):
        assert set(all_checkers()) >= {
            "determinism",
            "unit-suffix",
            "rng-policy",
            "ablation-api",
            "unused-import",
            "obs-policy",
        }


class TestCommittedTree:
    def test_analyze_clean_on_committed_tree(self, tmp_path):
        """`python -m tools.analyze src ...` exits clean with the committed baseline."""
        report_path = tmp_path / "report.json"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.analyze",
                "--json",
                str(report_path),
                "src",
                "tests",
                "benchmarks",
                "examples",
                "tools",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(report_path.read_text())
        assert report["findings"] == []
        assert report["parse_errors"] == []
        assert report["files_checked"] > 100

    def test_unknown_rule_is_usage_error(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.analyze", "--rules", "no-such-rule"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 2

    def test_list_rules(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.analyze", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        for rule in ("determinism", "unit-suffix", "rng-policy", "ablation-api"):
            assert rule in result.stdout


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
