"""Unit tests for repro.channel.antenna."""

import numpy as np
import pytest

from repro.channel.antenna import AntennaPair, TriangleArray
from repro.constants import ANTENNA_SPACING_M, WAVELENGTH_M
from repro.errors import ConfigurationError


class TestAntennaPair:
    def test_spacing(self):
        pair = AntennaPair(np.zeros(3), np.array([0.1, 0.0, 0.0]))
        assert pair.spacing_m == pytest.approx(0.1)

    def test_axis_is_unit(self):
        pair = AntennaPair(np.zeros(3), np.array([0.0, 2.0, 0.0]))
        assert np.allclose(pair.axis, [0.0, 1.0, 0.0])

    def test_midpoint(self):
        pair = AntennaPair(np.zeros(3), np.array([2.0, 0.0, 0.0]))
        assert np.allclose(pair.midpoint_m, [1.0, 0.0, 0.0])

    def test_true_spatial_angle(self):
        pair = AntennaPair(np.array([-0.1, 0.0, 0.0]), np.array([0.1, 0.0, 0.0]))
        assert pair.true_spatial_angle_rad(np.array([0.0, 5.0, 0.0])) == pytest.approx(
            np.pi / 2
        )

    def test_coincident_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            AntennaPair(np.zeros(3), np.zeros(3))


class TestTriangleArray:
    @pytest.fixture
    def array(self):
        return TriangleArray.street_pole(np.array([0.0, 0.0, 4.0]))

    def test_three_elements(self, array):
        assert array.positions_m.shape == (3, 3)

    def test_equilateral_with_half_wavelength_sides(self, array):
        positions = array.positions_m
        for i, j in ((0, 1), (1, 2), (2, 0)):
            side = np.linalg.norm(positions[i] - positions[j])
            assert side == pytest.approx(ANTENNA_SPACING_M, rel=1e-9)
            assert side == pytest.approx(WAVELENGTH_M / 2.0, rel=1e-9)

    def test_centroid_is_center(self, array):
        assert np.allclose(array.positions_m.mean(axis=0), [0.0, 0.0, 4.0])

    def test_pair_axes_mutually_60_degrees(self, array):
        pairs = array.pairs()
        for i in range(3):
            a = pairs[i].axis
            b = pairs[(i + 1) % 3].axis
            angle = np.rad2deg(np.arccos(np.clip(abs(np.dot(a, b)), -1, 1)))
            assert angle == pytest.approx(60.0, abs=1e-6)

    def test_street_pole_tilt(self):
        """Baselines lie in a plane tilted 60 degrees from the road."""
        array = TriangleArray.street_pole(np.array([0.0, 0.0, 4.0]), tilt_deg=60.0)
        # Plane normal: cross of the two basis vectors.
        normal = np.cross(array.e1, array.e2)
        # Angle between plane and horizontal = 90 - angle(normal, z).
        cos_nz = abs(normal[2]) / np.linalg.norm(normal)
        plane_tilt = 90.0 - np.rad2deg(np.arccos(cos_nz))
        assert plane_tilt == pytest.approx(90.0 - 60.0, abs=1e-6)

    def test_pair_indices_align_with_pairs(self, array):
        positions = array.positions_m
        for pair, (i, j) in zip(array.pairs(), array.pair_indices()):
            assert np.allclose(pair.first_m, positions[i])
            assert np.allclose(pair.second_m, positions[j])

    def test_non_orthogonal_basis_rejected(self):
        with pytest.raises(ConfigurationError):
            TriangleArray(
                center_m=np.zeros(3),
                e1=np.array([1.0, 0.0, 0.0]),
                e2=np.array([1.0, 1.0, 0.0]),
            )

    def test_element_accessor(self, array):
        assert np.allclose(array.element(1), array.positions_m[1])

    def test_custom_side(self):
        array = TriangleArray.street_pole(np.zeros(3), side_m=0.3)
        d = np.linalg.norm(array.positions_m[0] - array.positions_m[1])
        assert d == pytest.approx(0.3)
