"""Unit tests for repro.phy.crc."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, CrcError
from repro.phy.crc import CRC8_ATM, CRC16_CCITT, Crc


class TestKnownVectors:
    def test_crc16_ccitt_check_value(self):
        # CRC-16/CCITT-FALSE("123456789") == 0x29B1
        assert CRC16_CCITT.compute_bytes(b"123456789") == 0x29B1

    def test_crc32_check_value(self):
        # CRC-32/MPEG-2 (non-reflected, xorout 0) of "123456789" is
        # 0x0376E6E7; ours xors with 0xFFFFFFFF on top of that spec.
        crc = Crc(width=32, poly=0x04C11DB7, init=0xFFFFFFFF, xorout=0, name="mpeg2")
        assert crc.compute_bytes(b"123456789") == 0x0376E6E7

    def test_crc8_atm_check_value(self):
        # CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
        assert CRC8_ATM.compute_bytes(b"123456789") == 0xF4

    def test_empty_input(self):
        assert CRC16_CCITT.compute(np.zeros(0, dtype=np.uint8)) == 0xFFFF


class TestAppendCheckVerify:
    def test_append_then_check(self):
        payload = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        framed = CRC16_CCITT.append(payload)
        assert framed.size == payload.size + 16
        assert CRC16_CCITT.check(framed)

    def test_verify_returns_payload(self):
        payload = np.array([1, 1, 0, 1], dtype=np.uint8)
        framed = CRC16_CCITT.append(payload)
        assert np.array_equal(CRC16_CCITT.verify(framed), payload)

    def test_verify_raises_on_corruption(self):
        framed = CRC16_CCITT.append(np.ones(8, dtype=np.uint8))
        framed[3] ^= 1
        with pytest.raises(CrcError):
            CRC16_CCITT.verify(framed)

    def test_check_too_short(self):
        assert not CRC16_CCITT.check(np.ones(8, dtype=np.uint8))


class TestErrorDetection:
    def test_detects_every_single_bit_flip(self):
        payload = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0], dtype=np.uint8)
        framed = CRC16_CCITT.append(payload)
        for position in range(framed.size):
            corrupted = framed.copy()
            corrupted[position] ^= 1
            assert not CRC16_CCITT.check(corrupted), f"missed flip at {position}"

    def test_detects_burst_up_to_width(self):
        """A CRC of width w detects all bursts of length <= w."""
        rng = np.random.default_rng(3)
        payload = rng.integers(0, 2, size=64).astype(np.uint8)
        framed = CRC16_CCITT.append(payload)
        for start in range(0, framed.size - 16):
            corrupted = framed.copy()
            corrupted[start : start + 16] ^= 1
            assert not CRC16_CCITT.check(corrupted)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0))
    def test_random_single_flip_detected(self, data, position_seed):
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        framed = CRC16_CCITT.append(bits)
        position = position_seed % framed.size
        corrupted = framed.copy()
        corrupted[position] ^= 1
        assert not CRC16_CCITT.check(corrupted)


class TestSpecValidation:
    def test_width_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Crc(width=0, poly=0x1, init=0)

    def test_poly_too_wide(self):
        with pytest.raises(ConfigurationError):
            Crc(width=8, poly=0x1FF, init=0)
