"""Unit tests for repro.phy.transponder."""

import numpy as np
import pytest

from repro.constants import (
    DEFAULT_SAMPLE_RATE_HZ,
    QUERY_DURATION_S,
    READER_LO_HZ,
    RESPONSE_DURATION_S,
    TURNAROUND_S,
)
from repro.errors import ConfigurationError
from repro.phy.oscillator import Oscillator
from repro.phy.packet import TransponderPacket
from repro.phy.transponder import Transponder


@pytest.fixture
def tag():
    return Transponder(
        packet=TransponderPacket.create(3, 777),
        oscillator=Oscillator(READER_LO_HZ + 400e3),
        position_m=np.array([5.0, -3.0, 1.0]),
        rng=np.random.default_rng(0),
    )


class TestTiming:
    def test_response_starts_100us_after_query_end(self, tag):
        response = tag.respond(query_end_s=1.0)
        assert response.t0_s == pytest.approx(1.0 + TURNAROUND_S)

    def test_response_duration_512us(self, tag):
        response = tag.respond(0.0)
        assert response.duration_s == pytest.approx(RESPONSE_DURATION_S)

    def test_sample_count(self, tag):
        response = tag.respond(0.0)
        assert response.baseband.size == int(RESPONSE_DURATION_S * DEFAULT_SAMPLE_RATE_HZ)


class TestResponseContent:
    def test_bits_are_packet_bits(self, tag):
        response = tag.respond(0.0)
        assert np.array_equal(response.bits, tag.packet.to_bits())

    def test_cfo_matches_oscillator(self, tag):
        response = tag.respond(0.0)
        assert response.cfo_hz(READER_LO_HZ) == pytest.approx(400e3)

    def test_fresh_random_phase_per_response(self, tag):
        phases = {tag.respond(0.0).phase0_rad for _ in range(8)}
        assert len(phases) == 8  # §8: random initial phase every response

    def test_same_baseband_every_response(self, tag):
        """Tags have fixed ids: the chip stream never changes."""
        a = tag.respond(0.0)
        b = tag.respond(1.0)
        assert np.array_equal(a.baseband, b.baseband)

    def test_baseband_at_lo_has_peak_at_cfo(self, tag):
        wave = tag.respond(0.0).baseband_at_lo(READER_LO_HZ)
        spectrum = np.abs(np.fft.fft(wave.samples))
        peak_bin = int(np.argmax(spectrum))
        expected = round(400e3 / (DEFAULT_SAMPLE_RATE_HZ / wave.n_samples))
        assert peak_bin == expected

    def test_8mhz_sampling(self, tag):
        response = tag.respond(0.0, sample_rate_hz=8e6)
        assert response.baseband.size == int(RESPONSE_DURATION_S * 8e6)


class TestTrigger:
    def test_triggered_by_strong_query(self, tag):
        assert tag.is_triggered(rx_power_w=1e-6)  # -30 dBm

    def test_not_triggered_below_sensitivity(self, tag):
        assert not tag.is_triggered(rx_power_w=1e-12)  # -90 dBm

    def test_not_triggered_by_short_query(self, tag):
        assert not tag.is_triggered(rx_power_w=1e-6, query_duration_s=1e-6)

    def test_default_query_duration_triggers(self, tag):
        assert tag.is_triggered(1e-6, QUERY_DURATION_S)


class TestConstruction:
    def test_position_must_be_3d(self):
        with pytest.raises(ConfigurationError):
            Transponder(
                packet=TransponderPacket.create(1, 1),
                oscillator=Oscillator(915e6),
                position_m=np.array([1.0, 2.0]),
            )

    def test_position_optional(self):
        tag = Transponder(
            packet=TransponderPacket.create(1, 1), oscillator=Oscillator(915e6)
        )
        assert tag.position_m is None

    def test_random_factory(self):
        tag = Transponder.random(carrier_hz=914.9e6, rng=3)
        assert tag.carrier_hz == pytest.approx(914.9e6)

    def test_tx_amplitude_matches_power(self):
        tag = Transponder.random(carrier_hz=915e6, tx_power_dbm=0.0, rng=1)
        assert tag.tx_amplitude**2 == pytest.approx(1e-3)  # 0 dBm in watts
