"""Unit tests for repro.core.reader and repro.sim.scenario."""

import numpy as np
import pytest

from repro.core.reader import CaraokeReader
from repro.core.localization import ReaderGeometry
from repro.errors import ConfigurationError
from repro.sim.scenario import (
    intersection_scene,
    make_tags,
    parking_scene,
    two_pole_speed_scene,
)


def build_reader(scene) -> CaraokeReader:
    geometry = ReaderGeometry(scene.arrays[0], scene.road)
    return CaraokeReader(geometry=geometry, sample_rate_hz=scene.sample_rate_hz)


class TestScenarios:
    def test_parking_scene_shapes(self):
        scene, street, targets = parking_scene(target_spots=[1, 4], n_background_cars=2, rng=1)
        assert len(scene.tags) == 4
        assert len(targets) == 2
        assert street.is_occupied(1) and street.is_occupied(4)

    def test_parking_scene_positions_on_curb(self):
        scene, street, targets = parking_scene(target_spots=[2], n_background_cars=0, rng=2)
        assert targets[0][1] == pytest.approx(street.origin_m[1])

    def test_two_pole_scene(self):
        arrays, road = two_pole_speed_scene(baseline_m=61.0)
        assert len(arrays) == 4
        assert arrays[2].center_m[0] - arrays[0].center_m[0] == pytest.approx(61.0)
        # Station pairs face each other across the road.
        assert arrays[0].center_m[1] > 0 > arrays[1].center_m[1]

    def test_intersection_scene_queue(self):
        scene = intersection_scene(queue_length=5, rng=3)
        assert len(scene.tags) == 5
        xs = [t.position_m[0] for t in scene.tags]
        assert xs == sorted(xs)

    def test_intersection_scene_empty(self):
        scene = intersection_scene(queue_length=0, rng=4)
        assert scene.tags == []

    def test_simulator_index_validated(self):
        scene = intersection_scene(queue_length=1, rng=5)
        with pytest.raises(ConfigurationError):
            scene.simulator(3)

    def test_make_tags_positions(self):
        tags = make_tags(np.array([[1.0, 2.0, 1.0], [3.0, 4.0, 1.0]]), rng=6)
        assert len(tags) == 2
        assert np.allclose(tags[1].position_m, [3.0, 4.0, 1.0])


class TestCaraokeReader:
    def test_observe_counts_and_localizes(self):
        scene, _, _ = parking_scene(target_spots=[1, 3, 5], n_background_cars=0, rng=7)
        reader = build_reader(scene)
        collision = scene.simulator(0, rng=8).query(0.0)
        report = reader.observe(collision)
        assert report.n_tags == 3
        assert len(report.aoas) == 3
        for aoa in report.aoas:
            assert 0.0 < aoa.alpha_deg < 180.0

    def test_report_payload_small(self):
        """§12.5 footnote: a report is a few kbits at most."""
        scene, _, _ = parking_scene(target_spots=[1, 2], n_background_cars=2, rng=9)
        reader = build_reader(scene)
        report = reader.observe(scene.simulator(0, rng=10).query(0.0))
        assert report.payload_bits() < 4000

    def test_observe_timestamp(self):
        scene, _, _ = parking_scene(target_spots=[2], n_background_cars=0, rng=11)
        reader = build_reader(scene)
        collision = scene.simulator(0, rng=12).query(0.0)
        report = reader.observe(collision, timestamp_s=42.0)
        assert report.timestamp_s == 42.0

    def test_decode_all_in_range(self):
        scene, _, _ = parking_scene(target_spots=[1, 2, 3], n_background_cars=0, rng=13)
        reader = build_reader(scene)
        sim = scene.simulator(0, rng=14)
        results = reader.decode_all_in_range(lambda t: sim.query(t), max_queries=64)
        decoded = {r.packet.tag_id for r in results.values() if r.success}
        truth = {t.packet.tag_id for t in scene.tags}
        assert decoded <= truth
        assert len(decoded) >= 2  # in-bin CFO collisions may hide one

    def test_decode_all_in_range_zero_tags(self):
        """A noise-only capture counts zero tags and decodes nothing —
        and issues no further queries doing so."""
        scene = intersection_scene(queue_length=0, rng=17)
        reader = build_reader(scene)
        sim = scene.simulator(0, rng=18)
        queries = []

        def query_fn(t):
            queries.append(t)
            return sim.query(t)

        results = reader.decode_all_in_range(query_fn, max_queries=64)
        assert results == {}
        assert len(queries) == 1  # only the counting capture

    def test_decode_all_in_range_nonzero_antenna(self):
        """Decoding must work from any antenna of the triangle."""
        scene, _, _ = parking_scene(target_spots=[1, 4], n_background_cars=0, rng=19)
        truth = {t.packet.tag_id for t in scene.tags}
        for antenna_index in (1, 2):
            sim = scene.simulator(0, rng=20 + antenna_index)
            results = build_reader(scene).decode_all_in_range(
                # repro: allow[ablation-api] — no non-deprecated API selects a nonzero antenna yet
                lambda t: sim.query(t), max_queries=64, antenna_index=antenna_index
            )
            decoded = {r.packet.tag_id for r in results.values() if r.success}
            assert decoded == truth

    def test_count_without_aoa_on_single_antenna(self):
        scene, _, _ = parking_scene(target_spots=[2, 4], n_background_cars=0, rng=15)
        reader = build_reader(scene)
        collision = scene.simulator(0, rng=16).query(0.0)
        collision.antennas = collision.antennas[:1]
        report = reader.observe(collision)
        assert report.n_tags == 2
        assert report.aoas == []
