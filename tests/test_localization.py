"""Unit tests for repro.core.localization (§6)."""

import numpy as np
import pytest

from repro.constants import WAVELENGTH_M
from repro.core.localization import (
    AoAEstimator,
    ReaderGeometry,
    TwoReaderLocalizer,
    aoa_from_phase,
    phase_from_aoa,
)
from repro.errors import GeometryError, LocalizationError
from repro.sim.scenario import Scene, make_tags, parking_scene, two_pole_speed_scene


class TestPhaseAoA:
    def test_broadside_is_zero_phase(self):
        d = WAVELENGTH_M / 2.0
        assert phase_from_aoa(np.pi / 2, d) == pytest.approx(0.0, abs=1e-12)

    def test_roundtrip(self):
        d = WAVELENGTH_M / 2.0
        for alpha_deg in (30.0, 60.0, 90.0, 120.0, 150.0):
            alpha = np.deg2rad(alpha_deg)
            assert aoa_from_phase(phase_from_aoa(alpha, d), d) == pytest.approx(alpha)

    def test_eq10_formula(self):
        """cos(alpha) = delta_phi * lambda / (2 pi d)."""
        d = 0.1
        alpha = aoa_from_phase(1.0, d)
        assert np.cos(alpha) == pytest.approx(1.0 * WAVELENGTH_M / (2 * np.pi * d))

    def test_clamps_noisy_cosine(self):
        d = WAVELENGTH_M / 2.0
        alpha = aoa_from_phase(np.pi * 1.1, d)  # implies cos > 1
        assert alpha == pytest.approx(0.0)

    def test_strict_mode_raises(self):
        with pytest.raises(LocalizationError):
            aoa_from_phase(np.pi * 1.1, WAVELENGTH_M / 2.0, strict=True)

    def test_bad_spacing(self):
        with pytest.raises(LocalizationError):
            aoa_from_phase(0.0, 0.0)


class TestAoAEstimator:
    def test_accuracy_on_parked_tags(self):
        """AoA errors on clean LoS collisions are well under the paper's
        4-degree average."""
        scene, _, _ = parking_scene(target_spots=[2, 5], n_background_cars=1, rng=3)
        sim = scene.simulator(0, rng=4)
        collision = sim.query(0.0)
        estimator = AoAEstimator(scene.arrays[0])
        estimates = estimator.estimate_all(collision)
        assert len(estimates) >= 2
        for estimate in estimates:
            diffs = [
                abs(t.oscillator.carrier_hz - collision.lo_hz - estimate.cfo_hz)
                for t in scene.tags
            ]
            tag = scene.tags[int(np.argmin(diffs))]
            pair = estimator.best_pair(estimate)
            truth = np.rad2deg(pair.true_spatial_angle_rad(tag.position_m))
            assert abs(estimate.alpha_deg - truth) < 3.0

    def test_best_pair_near_broadside(self):
        """§6: for any position one of the three pairs lands in 60-120."""
        scene, _, _ = parking_scene(target_spots=[1], n_background_cars=0, rng=5)
        sim = scene.simulator(0, rng=6)
        estimator = AoAEstimator(scene.arrays[0])
        estimates = estimator.estimate_all(sim.query(0.0))
        assert estimates[0].in_usable_band()

    def test_needs_three_antennas(self):
        scene, _, _ = parking_scene(target_spots=[1], n_background_cars=0, rng=7)
        sim = scene.simulator(0, rng=8)
        collision = sim.query(0.0)
        collision.antennas = collision.antennas[:2]
        estimator = AoAEstimator(scene.arrays[0])
        with pytest.raises(LocalizationError):
            estimator.estimate_for_cfo(collision, 500e3)

    def test_all_three_pairs_reported(self):
        scene, _, _ = parking_scene(target_spots=[3], n_background_cars=0, rng=9)
        sim = scene.simulator(0, rng=10)
        estimator = AoAEstimator(scene.arrays[0])
        estimates = estimator.estimate_all(sim.query(0.0))
        assert len(estimates[0].alphas_rad) == 3


class TestTwoReaderLocalizer:
    def _locate(self, tag_xy, rng_seed=1):
        arrays, road = two_pole_speed_scene(baseline_m=60.0)
        tags = make_tags(np.array([[tag_xy[0], tag_xy[1], 1.0]]), rng=rng_seed)
        scene = Scene(tags=tags, road=road, arrays=arrays)
        col_a = scene.simulator(0, rng=rng_seed + 1).query(0.0)
        col_b = scene.simulator(1, rng=rng_seed + 2).query(0.0)
        est_a = AoAEstimator(arrays[0])
        est_b = AoAEstimator(arrays[1])
        a = est_a.estimate_all(col_a)[0]
        b = est_b.estimate_all(col_b)[0]
        localizer = TwoReaderLocalizer(
            ReaderGeometry(arrays[0], road), ReaderGeometry(arrays[1], road)
        )
        return localizer.locate(a, b, est_a, est_b, hint_xy=np.asarray(tag_xy) + 3.0)

    def test_localizes_within_a_meter(self):
        position = self._locate((20.0, -2.0))
        assert np.linalg.norm(position - [20.0, -2.0]) < 1.0

    def test_other_lane(self):
        position = self._locate((15.0, 2.5), rng_seed=11)
        assert np.linalg.norm(position - [15.0, 2.5]) < 1.5

    def test_impossible_geometry_raises(self):
        arrays, road = two_pole_speed_scene(baseline_m=60.0)
        est_a = AoAEstimator(arrays[0])
        est_b = AoAEstimator(arrays[1])
        localizer = TwoReaderLocalizer(
            ReaderGeometry(arrays[0], road), ReaderGeometry(arrays[1], road)
        )
        from repro.core.localization import AoAEstimate

        # Both readers claim the tag is essentially along their baselines
        # in opposite directions - no on-road intersection exists.
        fake_a = AoAEstimate(cfo_hz=1e5, alphas_rad=(0.1, 0.1, 0.1), best_pair_index=0)
        fake_b = AoAEstimate(
            cfo_hz=1e5, alphas_rad=(np.pi - 0.1,) * 3, best_pair_index=0
        )
        with pytest.raises(GeometryError):
            localizer.locate(fake_a, fake_b, est_a, est_b)


class TestReaderGeometry:
    def test_pole_height(self):
        arrays, road = two_pole_speed_scene()
        geometry = ReaderGeometry(arrays[0], road)
        assert geometry.pole_height_m == pytest.approx(arrays[0].center_m[2])
        assert np.allclose(geometry.pole_position_m, arrays[0].center_m)
