"""Unit tests for repro.dsp.spectrum and repro.dsp.peaks."""

import numpy as np
import pytest

from repro.constants import CFO_BIN_COUNT, FFT_RESOLUTION_HZ, READER_LO_HZ
from repro.dsp.peaks import (
    estimate_noise_floor,
    find_peaks_in_magnitudes,
    find_spectral_peaks,
    local_noise_floor,
    parabolic_offset,
)
from repro.dsp.spectrum import fft_spectrum, single_bin_dft
from repro.errors import SpectrumError
from repro.phy.waveform import Waveform
from tests.conftest import make_tag

FS = 4e6


class TestSpectrum:
    def test_resolution_is_1_over_T(self):
        """Eq 6: the full 512 us window gives 1.953 kHz bins."""
        wave = Waveform.silence(512e-6, FS)
        spectrum = fft_spectrum(wave)
        assert spectrum.resolution_hz == pytest.approx(FFT_RESOLUTION_HZ)
        assert spectrum.resolution_hz == pytest.approx(1953.125)

    def test_bin_count_615(self):
        """§5: the 1.2 MHz CFO span covers N = 615 bins."""
        assert CFO_BIN_COUNT == 615

    def test_tone_lands_in_right_bin(self):
        wave = Waveform.tone(400e3, 512e-6, FS)
        spectrum = fft_spectrum(wave)
        assert np.argmax(spectrum.magnitude()) == spectrum.bin_of(400e3)

    def test_bin_freq_roundtrip(self):
        spectrum = fft_spectrum(Waveform.silence(512e-6, FS))
        assert spectrum.freq_of(spectrum.bin_of(250e3)) == pytest.approx(250e3, abs=spectrum.bin_hz)

    def test_zero_padding_keeps_resolution(self):
        wave = Waveform.tone(100e3, 512e-6, FS)
        spectrum = fft_spectrum(wave, n_fft=4096)
        assert spectrum.n_bins == 4096
        assert spectrum.resolution_hz == pytest.approx(FFT_RESOLUTION_HZ)

    def test_window_offset_shifts_start(self):
        wave = Waveform.tone(100e3, 512e-6, FS)
        spectrum = fft_spectrum(wave, offset_samples=256, length_samples=1024)
        assert spectrum.window_start_s == pytest.approx(256 / FS)
        assert spectrum.n_input == 1024

    def test_unknown_window_rejected(self):
        with pytest.raises(SpectrumError):
            fft_spectrum(Waveform.silence(1e-4, FS), window="kaiser")

    def test_bin_of_out_of_range(self):
        spectrum = fft_spectrum(Waveform.silence(1e-4, FS))
        with pytest.raises(SpectrumError):
            spectrum.bin_of(5e6)


class TestSingleBinDft:
    def test_tone_amplitude_recovered(self):
        wave = Waveform.tone(313e3, 512e-6, FS, amplitude=2.5)
        assert abs(single_bin_dft(wave, 313e3)) == pytest.approx(2.5, rel=1e-3)

    def test_off_grid_tone_exact(self):
        """Works at arbitrary (non-bin-centered) frequencies."""
        freq = 313_777.7
        wave = Waveform.tone(freq, 512e-6, FS, amplitude=1.0)
        assert abs(single_bin_dft(wave, freq)) == pytest.approx(1.0, rel=1e-9)

    def test_absolute_time_reference(self):
        """Two windows of the same tone yield the same complex value when
        referenced to absolute time — the §5/§6 cross-window invariant."""
        wave = Waveform.tone(400e3, 512e-6, FS)
        a = single_bin_dft(wave, 400e3, offset_samples=0, length_samples=1024)
        b = single_bin_dft(wave, 400e3, offset_samples=512, length_samples=1024)
        assert a == pytest.approx(b, rel=1e-9)

    def test_eq5_channel_readout(self):
        """On a real OOK response: 2 * R(cfo) == h (Eq 5)."""
        tag = make_tag(500e3, seed=2)
        h = 0.003 * np.exp(1j * 1.1)
        wave = tag.respond(0.0).baseband_at_lo(READER_LO_HZ).scaled(h)
        estimate = 2.0 * single_bin_dft(wave, 500e3)
        # Tag applies its own random phase0; compare magnitudes and the
        # phase difference against that known phase.
        assert abs(estimate) == pytest.approx(abs(h), rel=0.02)


class TestFloorEstimation:
    def test_rayleigh_floor_scale(self):
        rng = np.random.default_rng(0)
        mags = np.abs(rng.normal(0, 1, 100_000) + 1j * rng.normal(0, 1, 100_000))
        # Rayleigh scale parameter (per-quadrature sigma) is 1 here; the
        # median/sqrt(ln 4) estimator must recover it.
        assert estimate_noise_floor(mags) == pytest.approx(1.0, rel=0.02)

    def test_local_floor_tracks_color(self):
        """A stepped floor must be tracked locally, not globally."""
        rng = np.random.default_rng(1)
        low = np.abs(rng.normal(0, 1, 300) + 1j * rng.normal(0, 1, 300))
        high = 10 * np.abs(rng.normal(0, 1, 300) + 1j * rng.normal(0, 1, 300))
        floors = local_noise_floor(np.concatenate([low, high]), window_bins=65)
        assert floors[:200].mean() < 3.0
        assert floors[-200:].mean() > 8.0

    def test_local_floor_excludes_guard(self):
        mags = np.ones(101)
        mags[50] = 100.0  # a spike must not raise its own floor
        floors = local_noise_floor(mags, window_bins=41, guard_bins=3)
        assert floors[50] == pytest.approx(1.0 / np.sqrt(np.log(4.0)))

    def test_empty_rejected(self):
        with pytest.raises(SpectrumError):
            estimate_noise_floor(np.zeros(0))


class TestParabolicOffset:
    def test_exact_for_parabola(self):
        # Parabola with vertex at +0.3: y = 1 - (x - 0.3)^2.
        y = lambda x: 1 - (x - 0.3) ** 2
        assert parabolic_offset(y(-1), y(0), y(1)) == pytest.approx(0.3)

    def test_symmetric_peak_centered(self):
        assert parabolic_offset(0.5, 1.0, 0.5) == 0.0

    def test_clipped_to_half_bin(self):
        assert abs(parabolic_offset(0.0, 0.1, 0.2)) <= 0.5

    def test_flat_input(self):
        assert parabolic_offset(1.0, 1.0, 1.0) == 0.0


class TestFindPeaks:
    def test_five_tones_detected(self):
        wave = Waveform.silence(512e-6, FS)
        freqs = [100e3, 320e3, 540e3, 800e3, 1100e3]
        for f in freqs:
            wave = wave + Waveform.tone(f, 512e-6, FS, amplitude=1.0)
        rng = np.random.default_rng(0)
        noisy = Waveform(wave.samples + rng.normal(0, 0.05, wave.n_samples), FS)
        peaks = find_spectral_peaks(fft_spectrum(noisy), 10e3, 1.25e6, min_snr_db=15)
        assert len(peaks) == 5
        for peak, f in zip(peaks, freqs):
            assert peak.freq_hz == pytest.approx(f, abs=FFT_RESOLUTION_HZ)

    def test_sub_bin_refinement(self):
        freq = 400e3 + 700.0  # deliberately off-grid
        wave = Waveform.tone(freq, 512e-6, FS)
        rng = np.random.default_rng(1)
        noisy = Waveform(wave.samples + rng.normal(0, 0.01, wave.n_samples), FS)
        peaks = find_spectral_peaks(fft_spectrum(noisy), 10e3, 1.25e6)
        assert len(peaks) == 1
        assert peaks[0].freq_hz == pytest.approx(freq, abs=FFT_RESOLUTION_HZ / 3)

    def test_max_peaks_keeps_strongest(self):
        wave = Waveform.tone(200e3, 512e-6, FS, amplitude=1.0) + Waveform.tone(
            800e3, 512e-6, FS, amplitude=0.2
        )
        rng = np.random.default_rng(2)
        noisy = Waveform(wave.samples + rng.normal(0, 0.005, wave.n_samples), FS)
        peaks = find_spectral_peaks(fft_spectrum(noisy), 10e3, 1.25e6, max_peaks=1)
        assert len(peaks) == 1
        assert peaks[0].freq_hz == pytest.approx(200e3, abs=FFT_RESOLUTION_HZ)

    def test_min_separation_suppresses_shoulder(self):
        mags = np.full(300, 1.0)
        mags[100] = 50.0
        mags[101] = 40.0  # shoulder of the same peak
        peaks = find_peaks_in_magnitudes(mags, 1e3, 0.0, 299e3, min_snr_db=10)
        assert len(peaks) == 1

    def test_empty_band_rejected(self):
        with pytest.raises(SpectrumError):
            find_peaks_in_magnitudes(np.ones(100), 1e3, 50e3, 50e3)

    def test_snr_reported(self):
        wave = Waveform.tone(400e3, 512e-6, FS, amplitude=1.0)
        rng = np.random.default_rng(3)
        noisy = Waveform(wave.samples + rng.normal(0, 0.02, wave.n_samples), FS)
        peaks = find_spectral_peaks(fft_spectrum(noisy), 10e3, 1.25e6)
        assert peaks[0].snr > 10.0
