"""Fig 16: identification time vs number of colliding transponders.

The paper decodes tag ids out of collisions of 1..10 tags; since queries
go out every 1 ms, identification time = queries-to-CRC-pass x 1 ms:
~4.2 ms for 2 colliding tags, ~16.2 ms for 5, within ~50 ms at 10. It
also notes decoding *all* colliding tags costs no more air time than the
slowest single tag, because the same collisions are recombined per target.
"""

import numpy as np

from bench_helpers import population_simulator
from conftest import scaled
from repro.core.cfo import extract_cfo_peaks
from repro.core.decoding import CoherentDecoder, DecodeSession


def bench_fig16_identification_time(benchmark, report):
    experiments = scaled(6)
    sizes = tuple(range(1, 11))

    def run_all():
        per_tag_ms: dict[int, list[float]] = {m: [] for m in sizes}
        all_tags_ms: dict[int, list[float]] = {m: [] for m in sizes}
        decoded_fraction: dict[int, list[float]] = {m: [] for m in sizes}
        for m in sizes:
            for run in range(experiments):
                simulator = population_simulator(m=m, seed=1600 + 113 * m + run)
                decoder = CoherentDecoder(simulator.sample_rate_hz)
                session = DecodeSession(
                    query_fn=lambda t: simulator.query(t), decoder=decoder
                )
                peaks = extract_cfo_peaks(
                    simulator.query(0.0).antenna(0), min_snr_db=15
                )
                results = session.decode_all(
                    [p.cfo_hz for p in peaks], max_queries=64
                )
                succeeded = [r for r in results.values() if r.success]
                if not succeeded:
                    continue
                per_tag_ms[m].extend(r.identification_time_ms for r in succeeded)
                all_tags_ms[m].append(session.total_air_time_s * 1e3)
                decoded_fraction[m].append(len(succeeded) / max(len(results), 1))
        return per_tag_ms, all_tags_ms, decoded_fraction

    per_tag, all_tags, decoded = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(f"Fig 16 — identification time vs colliding tags ({experiments} runs/point)")
    report(f"{'m':>3} {'per-tag mean [ms]':>18} {'all-tags air [ms]':>18} {'decoded':>8}")
    means = {}
    for m in sizes:
        if not per_tag[m]:
            continue
        means[m] = float(np.mean(per_tag[m]))
        report(
            f"{m:3d} {means[m]:18.1f} {np.mean(all_tags[m]):18.1f} "
            f"{np.mean(decoded[m]) * 100:7.0f}%"
        )
    report("")
    report("paper: ~4.2 ms at m=2, ~16.2 ms at m=5, <~50 ms at m=10;")
    report("decoding all tags reuses the same collisions (shared air time)")

    assert means[1] <= 4.0, "a lone tag decodes almost immediately"
    assert means[2] < means[5] < means[10], "time must grow with collision size"
    assert means[5] < 35.0
    assert means[10] < 64.0
