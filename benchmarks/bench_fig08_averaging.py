"""Fig 8: a tag's bits emerge from the collision as replies are averaged.

The paper shows the time signal of a 5-tag collision before averaging
(random), after 8 averages (structure appears) and after 16 (decodable).
The quantitative handle is the SINR of the target's chip stream inside
the accumulated signal, which coherent combining grows linearly in N
while interferers grow as sqrt(N) (§8).
"""

import numpy as np

from bench_helpers import population_simulator
from conftest import scaled
from repro.core.cfo import estimate_channel, refine_frequency
from repro.phy.modulation import OokModulator


def _target_sinr_db(accumulator: np.ndarray, n: int, bits: np.ndarray, fs: float) -> float:
    """SINR of the target chips inside an N-fold accumulation."""
    modulator = OokModulator(sample_rate_hz=fs)
    ideal = modulator.modulate_bits(bits) * n
    residual = accumulator.real[: ideal.size] - ideal
    signal_power = np.mean((ideal - ideal.mean()) ** 2)
    noise_power = np.mean(residual**2)
    return float(10 * np.log10(signal_power / noise_power))


def bench_fig08_averaging(benchmark, report):
    repeats = scaled(6)

    def experiment():
        sinr_by_n = {1: [], 4: [], 8: [], 16: []}
        decodable_at = []
        for seed in range(repeats):
            simulator = population_simulator(m=5, seed=800 + seed)
            collision = simulator.query(0.0)
            # Pick the strongest tag as the target, like the figure.
            strengths = [abs(e.channels[0]) for e in collision.truth]
            target = collision.truth[int(np.argmax(strengths))]
            cfo0 = target.cfo_hz(collision.lo_hz)
            captures = [simulator.query(i * 1e-3).antenna(0) for i in range(16)]
            cfo = refine_frequency(captures[0], cfo0, span_hz=977.0)
            accumulator = np.zeros(captures[0].n_samples, dtype=complex)
            for n, capture in enumerate(captures, start=1):
                h = estimate_channel(capture, cfo)
                t = capture.times()
                accumulator += capture.samples * np.exp(-2j * np.pi * cfo * t) / h
                if n in sinr_by_n:
                    sinr_by_n[n].append(
                        _target_sinr_db(
                            accumulator, n, target.response.bits, capture.sample_rate_hz
                        )
                    )
            decodable_at.append(np.nan)
        return {n: float(np.mean(v)) for n, v in sinr_by_n.items()}

    sinr = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report("Fig 8 — target chip SINR vs number of averaged replies (5-tag collision)")
    for n in (1, 4, 8, 16):
        bar = "#" * max(0, int(round(sinr[n] + 10)))
        report(f"  N = {n:2d}: {sinr[n]:6.1f} dB  {bar}")
    report("")
    report("paper: bits are visually random at N=1, decodable by N=16")

    assert sinr[16] > sinr[8] > sinr[1], "SINR must grow with averaging"
    gain = sinr[16] - sinr[1]
    assert 7.0 < gain < 18.0, f"~N scaling expected (12 dB for 16x), got {gain:.1f} dB"
