"""§5 analysis: P(not missing any transponder) for both estimators.

The paper's numbers (N = 615 bins):

* naive peak counting (Eq 7):      98 %, 93 %, 73 %   for m = 5, 10, 20
* with 2-in-bin detection (Eq 9):  >= 99.9 %, 99.9 %, 99.7 %
* on the measured CFO population:  99.9 %, 99.5 %, 95.3 %

This bench evaluates the closed forms, the exact occupancy probability,
and Monte-Carlo sweeps under uniform and empirical CFO distributions.
"""

from bench_helpers import NOISE_W  # noqa: F401  (keeps import graph warm)
from conftest import scaled
from repro.core.theory import (
    p_no_miss_exact,
    p_no_miss_naive,
    p_no_miss_paper_bound,
    simulate_no_miss_probability,
)
from repro.datasets import empirical_cfo_dataset
from repro.phy.oscillator import UniformCfoModel


def bench_sec05_probability_table(benchmark, report):
    runs = scaled(6000)
    empirical = empirical_cfo_dataset()
    uniform = UniformCfoModel()

    def experiment():
        rows = []
        for m in (5, 10, 20):
            rows.append(
                dict(
                    m=m,
                    naive=p_no_miss_naive(m),
                    bound=p_no_miss_paper_bound(m),
                    exact=p_no_miss_exact(m),
                    mc_uniform=simulate_no_miss_probability(
                        uniform, m, "upgraded", runs=runs, rng=m
                    ),
                    mc_empirical=simulate_no_miss_probability(
                        empirical, m, "upgraded", runs=runs, rng=100 + m
                    ),
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report("§5 — P(not missing any transponder), N = 615 bins")
    report(f"{'m':>3} {'naive Eq7':>10} {'bound Eq9':>10} {'exact':>8} "
           f"{'MC uniform':>11} {'MC empirical':>13}   paper (naive / Eq9 / empirical)")
    paper = {5: (0.98, 0.999, 0.999), 10: (0.93, 0.999, 0.995), 20: (0.73, 0.997, 0.953)}
    for row in rows:
        p = paper[row["m"]]
        report(
            f"{row['m']:3d} {row['naive']:10.3f} {row['bound']:10.4f} "
            f"{row['exact']:8.4f} {row['mc_uniform']:11.4f} {row['mc_empirical']:13.4f}"
            f"   ({p[0]:.2f} / {p[1]:.3f} / {p[2]:.3f})"
        )

    for row in rows:
        p = paper[row["m"]]
        assert abs(row["naive"] - p[0]) < 0.01, "Eq 7 must match the paper"
        assert row["bound"] >= p[1] - 0.001, "Eq 9 bound must match the paper"
        assert row["exact"] >= row["bound"] - 1e-9
        # The empirical (clustered) population is worse than uniform.
        assert row["mc_empirical"] <= row["mc_uniform"] + 0.02
