"""City corridor engine: event-driven scheduling vs sequential rounds.

Three experiments on the :class:`repro.sim.city.CityCorridor` engine:

1. **The full corridor** — 8 stations, 100 cars streaming through on
   :mod:`repro.sim.mobility` trajectories. One event-driven run reports
   Fig-16-style identification numbers (time from first sighting to
   identification, decode queries per tag) and the
   :class:`~repro.sim.city.HandoffLedger` breakdown: the acceptance bar
   is that more than half of all downstream first-sightings (a tag
   arriving at a pole another pole already identified) resolve by cache
   handoff instead of a re-decode. This experiment runs the pipeline
   default (``opportunistic="accept"``); at the 40 m spacing tags are
   decoded too close to their own pole for neighbors' windows to matter
   much, so its headline numbers differ from the pre-pool seed only by
   the run's realization — the controlled accept-vs-ignore comparison
   is experiment 3.

2. **Scheduling throughput** — the same world driven at a saturating
   cadence through both schedulers. The sequential-rounds baseline
   (``ReaderNetwork.step`` semantics on a shared clock: stations take
   strict turns, each turn serializing its burst) cannot fit every
   station's turn inside the cadence; the event-driven scheduler can,
   because simultaneous queries are benign (§9 rule 1) and response
   slots may overlap — decoding collisions is the whole point. The gate:
   event-driven >= sequential in queries/sec with no more corrupted
   responses.

3. **Cross-pole overheard responses** — the same 8 poles and 100 cars
   on a *dense* deployment (25 m spacing: every car is inside 2-3
   poles' radio range, the §9 shared-street regime), identical worlds
   under ``opportunistic="accept"`` versus ``"ignore"``. A tag that
   answers one pole's query is audible at its neighbors, so harvesting
   those trigger windows from the shared :class:`ResponsePool` is free
   decode evidence. The gate: ``"accept"`` identifies tags at strictly
   fewer *own* decode queries each, at zero CSMA-corrupted responses
   and zero corrupted overheard evidence.

Set ``REPRO_BENCH_SCALE`` < 1 to shorten the simulations.
"""

import time

from bench_helpers import population_simulator, timer, write_bench_json
from conftest import bench_scale as _scale
from repro.core.counting import CollisionCounter
from repro.sim.city import CityCorridor
from repro.sim.scenario import city_corridor_scene

LANES = (-1.75, -5.25)
N_POLES = 8
N_CARS = 100
CORRIDOR_SEED = 2025
THROUGHPUT_SEED = 31
OVERHEARD_SEED = 2025
#: Pole spacing of the dense deployment the overheard experiment runs
#: on; the default 40 m corridor decodes tags too close to their own
#: pole for a neighbor's query to reach them.
OVERHEARD_POLE_SPACING_M = 25.0


def corridor(
    mode, seed, *, n_cars, entry, entry_window_s=0.0, pole_spacing_m=40.0, **kwargs
):
    scene, trajectories = city_corridor_scene(
        n_poles=N_POLES,
        pole_spacing_m=pole_spacing_m,
        lane_ys_m=LANES,
        n_cars=n_cars,
        entry=entry,
        entry_window_s=entry_window_s,
        rng=seed,
    )
    return CityCorridor.build(
        scene,
        trajectories,
        lane_ys_m=LANES,
        rng=seed,
        scheduling=mode,
        **kwargs,
    )


def bench_city_corridor(benchmark, report):
    scale = _scale()
    corridor_duration_s = max(4.0, 12.0 * scale)
    throughput_duration_s = max(0.4, 1.0 * scale)
    overheard_duration_s = max(3.0, 6.0 * scale)

    def run_all():
        # -- 1: the 8-station, 100-car corridor (event-driven) ---------
        with timer.phase("mac"):
            city = corridor(
                "event",
                CORRIDOR_SEED,
                n_cars=N_CARS,
                entry="stream",
                entry_window_s=0.75 * corridor_duration_s,
                max_queries=32,
            )
            full = city.run(corridor_duration_s)

        # -- 2: throughput at saturating cadence, both schedulers ------
        modes = {}
        with timer.phase("mac"):
            for mode in ("event", "rounds"):
                modes[mode] = corridor(
                    mode,
                    THROUGHPUT_SEED,
                    n_cars=24,
                    entry="spread",
                    query_interval_s=6e-3,
                    jitter_s=0.5e-3,
                    max_queries=16,
                ).run(throughput_duration_s)

        # -- 3: overheard responses on the dense deployment ------------
        policies = {}
        with timer.phase("decode"):
            for policy in ("accept", "ignore"):
                policies[policy] = corridor(
                    "event",
                    OVERHEARD_SEED,
                    n_cars=N_CARS,
                    entry="spread",
                    pole_spacing_m=OVERHEARD_POLE_SPACING_M,
                    max_queries=32,
                    opportunistic=policy,
                ).run(overheard_duration_s)
        return full, modes, policies

    full, modes, policies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    event, rounds = modes["event"], modes["rounds"]
    accept, ignore = policies["accept"], policies["ignore"]
    handoff = full.ledger.summary()

    report(
        f"City corridor — {N_POLES} stations, {N_CARS} cars, "
        f"{full.duration_s:.0f} s event-driven run"
    )
    report(
        f"  rounds {full.rounds} (empty {full.empty_rounds}), queries "
        f"{full.queries_sent} ({full.queries_per_s:.0f}/s), deferred "
        f"{full.queries_deferred}, corrupted responses "
        f"{full.corrupted_responses}/{full.responses}"
    )
    report(
        f"  tags seen {full.tags_seen}, identified {full.identified}; "
        f"mean identification delay {full.mean_identification_delay_s:.2f} s, "
        f"mean decode queries {full.mean_identification_queries:.1f}"
    )
    delays = sorted(s.delay_s for s in full.identifications)
    if delays:
        median = delays[len(delays) // 2]
        report(
            f"  identification delay median {median:.2f} s, "
            f"p90 {delays[int(0.9 * (len(delays) - 1))]:.2f} s"
        )
    report(
        f"  handoff: {handoff['counts']} -> "
        f"{100 * handoff['handoff_resolution_rate']:.0f}% of "
        f"{handoff['downstream_sightings']} downstream first-sightings "
        f"resolved by forwarded cache entries "
        f"({full.ledger.handoffs} decode bursts avoided)"
    )
    report("")
    report(
        f"Scheduling throughput — {N_POLES} stations, 24 cars spread, "
        f"6 ms cadence, {event.duration_s:.1f} s"
    )
    report(
        f"{'scheduler':>10} {'queries':>8} {'q/s':>8} {'deferred':>9} "
        f"{'corrupted':>10} {'identified':>11}"
    )
    for name, result in (("event", event), ("rounds", rounds)):
        report(
            f"{name:>10} {result.queries_sent:8d} {result.queries_per_s:8.0f} "
            f"{result.queries_deferred:9d} {result.corrupted_responses:10d} "
            f"{result.identified:11d}"
        )
    ratio = event.queries_per_s / rounds.queries_per_s
    report(
        f"event-driven/sequential queries/sec: {ratio:.2f}x "
        f"(turn serialization is the baseline's ceiling)"
    )

    report("")
    report(
        f"Cross-pole overheard responses — {N_POLES} poles every "
        f"{OVERHEARD_POLE_SPACING_M:.0f} m, {N_CARS} cars spread, "
        f"{accept.duration_s:.0f} s, accept vs ignore"
    )
    report(
        f"{'policy':>8} {'identified':>11} {'own q/tag':>10} "
        f"{'overheard/tag':>14} {'donated':>8} {'combined':>9}"
    )
    for name, result in (("accept", accept), ("ignore", ignore)):
        report(
            f"{name:>8} {result.identified:11d} "
            f"{result.mean_identification_queries:10.2f} "
            f"{result.overheard_per_identified:14.2f} "
            f"{result.overheard_donated:8d} "
            f"{result.ledger.overheard_captures_used():9d}"
        )
    own_query_ratio = (
        ignore.mean_identification_queries / accept.mean_identification_queries
    )
    report(
        f"neighbors' trigger windows buy {own_query_ratio:.2f}x fewer own "
        f"decode queries per identified tag "
        f"({accept.overheard_windows} windows published, "
        f"{accept.overheard_harvested} harvested, "
        f"{accept.overheard_corrupted_at_harvest} corrupted at harvest, "
        f"{accept.overheard_corrupted_posthoc} corrupted post-hoc)"
    )

    # -- 4: the per-occupied-round counting hot path -------------------
    # CollisionCounter.count dominates each occupied round; its probe
    # and decision passes share one set of spectra + CFAR floors, and
    # the refine/fit stages run batched across peaks and captures.
    # Outputs are identical on every ablation — this times the savings.
    sim = population_simulator(m=10, seed=77)
    capture = sim.query(0.0).antenna(0)
    counter_ms = {}
    for label, counter in (
        ("shared", CollisionCounter()),
        ("recompute", CollisionCounter(reuse_probe_spectra=False)),
    ):
        counter.count(capture)  # warm-up
        best = float("inf")
        with timer.phase("count"):
            for _ in range(3):
                t0 = time.perf_counter()
                for _ in range(10):
                    counter.count(capture)
                best = min(best, (time.perf_counter() - t0) / 10)
        counter_ms[label] = best * 1e3
    # A shared-t0 burst exercises the stacked multi-RHS lstsq; the
    # batch_fit=False ablation is the pre-batching per-capture loop.
    burst = [sim.query(0.0).antenna(0) for _ in range(4)]
    for label, counter in (
        ("burst_batched", CollisionCounter()),
        ("burst_looped", CollisionCounter(batch_fit=False)),
    ):
        counter.count_multi(burst)  # warm-up
        best = float("inf")
        with timer.phase("count"):
            for _ in range(3):
                t0 = time.perf_counter()
                for _ in range(5):
                    counter.count_multi(burst)
                best = min(best, (time.perf_counter() - t0) / 5)
        counter_ms[label] = best * 1e3
    report("")
    report(
        f"Counting hot path (10-tag capture): shared probe spectra "
        f"{counter_ms['shared']:.2f} ms/count vs recompute "
        f"{counter_ms['recompute']:.2f} ms/count"
    )
    report(
        f"  4-capture burst: stacked tone fit "
        f"{counter_ms['burst_batched']:.2f} ms vs per-capture loop "
        f"{counter_ms['burst_looped']:.2f} ms"
    )

    write_bench_json(
        "city_corridor",
        {
            "corridor": full.summary(),
            "throughput": {
                "event": event.summary(),
                "rounds": rounds.summary(),
                "event_over_rounds_queries_per_s": ratio,
            },
            "opportunistic": {
                "pole_spacing_m": OVERHEARD_POLE_SPACING_M,
                "accept": accept.summary(),
                "ignore": ignore.summary(),
                "ignore_over_accept_own_queries": own_query_ratio,
            },
            "counter_count_ms": counter_ms,
        },
    )

    assert full.corrupted_responses == 0, "CSMA must keep the street clean"
    assert handoff["handoff_resolution_rate"] > 0.5, (
        "most downstream sightings must resolve by handoff, got "
        f"{handoff['handoff_resolution_rate']:.2f}"
    )
    assert event.queries_per_s >= rounds.queries_per_s, (
        f"event-driven {event.queries_per_s:.0f} q/s fell behind "
        f"sequential rounds {rounds.queries_per_s:.0f} q/s"
    )
    assert event.corrupted_responses <= rounds.corrupted_responses
    assert counter_ms["shared"] <= counter_ms["recompute"] * 1.05, (
        "sharing probe spectra must not cost time: "
        f"{counter_ms['shared']:.2f} vs {counter_ms['recompute']:.2f} ms"
    )
    assert counter_ms["burst_batched"] <= counter_ms["burst_looped"] * 1.05, (
        "stacking the burst tone fit must not cost time: "
        f"{counter_ms['burst_batched']:.2f} vs {counter_ms['burst_looped']:.2f} ms"
    )
    # CSMA keeps bursts off each other, so synthesis-time corruption
    # verdicts already match the exact post-hoc re-check.
    assert full.burst_corruption_undercount == 0
    # Overheard trigger windows are free evidence: identification must
    # cost strictly fewer own queries when neighbors are overheard, on
    # a clean street with no corrupted evidence combined.
    assert (
        accept.mean_identification_queries < ignore.mean_identification_queries
    ), (
        f"opportunistic combining must cut own decode queries: "
        f"accept {accept.mean_identification_queries:.2f} vs "
        f"ignore {ignore.mean_identification_queries:.2f}"
    )
    assert accept.ledger.overheard_captures_used() > 0
    assert accept.corrupted_responses == 0
    assert ignore.corrupted_responses == 0
    assert accept.overheard_corrupted_at_harvest == 0
    assert accept.overheard_corrupted_posthoc == 0
