"""Fig 13: AoA error for cars parked in spots 1..6.

The paper parks tagged cars in each of six spots and measures the AoA
error against laser-ranged ground truth: ~4 degrees on average, worst at
the two ends of the row (spots 1 and 6), where the 60-degree antenna tilt
trades error away from the far end.

We run multiple configurations per spot with colliding background cars
and report the mean/std error per spot, plus a no-tilt ablation showing
why the 60-degree mounting matters.
"""

import numpy as np

from conftest import scaled
from repro.core.localization import AoAEstimator
from repro.sim.scenario import parking_scene


def _spot_errors(tilt_deg: float, runs: int) -> dict[int, list[float]]:
    from repro.channel.antenna import TriangleArray

    errors: dict[int, list[float]] = {i: [] for i in range(1, 7)}
    for spot in range(1, 7):
        for run in range(runs):
            scene, street, targets = parking_scene(
                target_spots=[spot], n_background_cars=2, rng=1300 + 31 * spot + run
            )
            if tilt_deg != 60.0:
                scene.arrays[0] = TriangleArray.street_pole(
                    scene.arrays[0].center_m, tilt_deg=tilt_deg
                )
            estimator = AoAEstimator(scene.arrays[0])
            collision = scene.simulator(0, rng=1400 + 31 * spot + run).query(0.0)
            estimates = estimator.estimate_all(collision)
            target_cfo = scene.tags[0].oscillator.carrier_hz - collision.lo_hz
            best = min(estimates, key=lambda e: abs(e.cfo_hz - target_cfo))
            if abs(best.cfo_hz - target_cfo) > 1500.0:
                continue  # the target shared a bin with a background car
            pair = estimator.best_pair(best)
            truth = np.rad2deg(pair.true_spatial_angle_rad(targets[0]))
            errors[spot].append(abs(best.alpha_deg - truth))
    return errors


def bench_fig13_parking_aoa(benchmark, report):
    runs = scaled(8)

    def experiment():
        return _spot_errors(60.0, runs), _spot_errors(15.0, max(2, runs // 2))

    tilted, flat = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report(f"Fig 13 — AoA error per parking spot ({runs} runs/spot, 2 colliding cars)")
    report(f"{'spot':>5} {'mean err [deg]':>14} {'std':>6}   60-deg tilt (paper setup)")
    means = {}
    for spot in range(1, 7):
        values = tilted[spot]
        means[spot] = float(np.mean(values)) if values else float("nan")
        std = float(np.std(values)) if values else float("nan")
        bar = "#" * int(round(means[spot] * 4)) if values else ""
        report(f"{spot:5d} {means[spot]:14.2f} {std:6.2f}   {bar}")
    overall = float(np.mean([e for v in tilted.values() for e in v]))
    report("")
    report(f"overall mean error: {overall:.2f} deg (paper: ~4 deg average)")

    flat_far = float(np.mean(flat[6])) if flat[6] else float("nan")
    tilt_far = means[6]
    report("")
    report("ablation — antennas nearly parallel to the road (15-deg tilt):")
    report(f"  spot 6 mean error: {flat_far:.2f} deg vs {tilt_far:.2f} deg with 60-deg tilt")
    report("  (§6/§12.2: without the tilt, far spots sit near end-fire where")
    report("   d(alpha)/d(phase) blows up)")

    assert overall < 4.5, f"mean AoA error {overall:.2f} deg exceeds the paper scale"
    assert means[6] < 8.0
