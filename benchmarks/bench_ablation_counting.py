"""Ablations on the §5 counter — the design choices DESIGN.md calls out.

Four axes:

1. **classifier**: the paper's time-shift magnitude test vs our
   sub-window coherence/dispersion generalization;
2. **multi-bin upgrade**: Caraoke vs the naive peak counter (Eq 7 regime);
3. **burst size**: one capture vs the reader's 4-query wake-up burst;
4. **amplitude regime**: parking-lot (paper's methodology) vs street
   near-far spread.
"""

import numpy as np

from bench_helpers import population_simulator
from conftest import scaled
from repro.baselines.naive_counter import NaiveCounter
from repro.core.counting import CollisionCounter


def bench_ablation_counting(benchmark, report):
    runs = scaled(12)
    sizes = (5, 15, 30, 50)

    def accuracy(counter_fn, m, spread, n_captures, seed_base):
        estimates = []
        for run in range(runs):
            simulator = population_simulator(
                m=m, seed=seed_base + 31 * m + run, spread=spread
            )
            waves = [simulator.query(i * 1e-3).antenna(0) for i in range(n_captures)]
            estimates.append(counter_fn(waves))
        return float(np.mean(np.asarray(estimates, dtype=float) / m) * 100.0)

    coherence = CollisionCounter()
    shift = CollisionCounter(method="shift")
    naive = NaiveCounter()

    def experiment():
        table = {}
        for m in sizes:
            table[("caraoke-coherence", m)] = accuracy(
                lambda w: coherence.count_multi(w).count, m, "lot", 4, 2000
            )
            table[("caraoke-shift", m)] = accuracy(
                lambda w: shift.count_multi(w).count, m, "lot", 4, 2000
            )
            table[("naive-peaks", m)] = accuracy(
                lambda w: naive.count(w[0]), m, "lot", 4, 2000
            )
            table[("caraoke-1-capture", m)] = accuracy(
                lambda w: coherence.count_multi(w).count, m, "lot", 1, 2000
            )
            table[("caraoke-street", m)] = accuracy(
                lambda w: coherence.count_multi(w).count, m, "street", 4, 2000
            )
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    variants = (
        "caraoke-coherence",
        "caraoke-shift",
        "naive-peaks",
        "caraoke-1-capture",
        "caraoke-street",
    )
    report(f"§5 counting ablations — accuracy %% ({runs} runs/cell, lot regime unless noted)")
    header = f"{'variant':<20}" + "".join(f"{f'm={m}':>9}" for m in sizes)
    report(header)
    for variant in variants:
        row = f"{variant:<20}" + "".join(
            f"{table[(variant, m)]:9.1f}" for m in sizes
        )
        report(row)
    report("")
    report("readings: the multi-bin upgrade beats naive peak counting at every")
    report("density; 4-query bursts recover weak tags in dense collisions; the")
    report("street's near-far spread is the hardest regime (not evaluated in the")
    report("paper, whose §12.1 methodology equalizes amplitudes).")

    for m in sizes:
        assert table[("caraoke-coherence", m)] >= table[("naive-peaks", m)] - 2.0
    assert table[("caraoke-coherence", 50)] >= table[("caraoke-1-capture", 50)] - 2.0
