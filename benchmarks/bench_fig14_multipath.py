"""Fig 14: the multipath profile of an outdoor pole-mounted reader.

The paper rotates an antenna on a 70 cm arm (synthetic aperture),
reconstructs the angular profile of a tag's signal, and finds one
dominant line-of-sight peak — on average 27x (14.3 dB) stronger than the
second path, across 100 runs. We synthesize the same rig over a ground
bounce + parked-car scatterer channel and reproduce the profile and the
peak-ratio statistic.
"""

import numpy as np

from conftest import scaled
from repro.channel.multipath import GroundBounce, MultipathChannel, PointScatterer
from repro.constants import SAR_RADIUS_M
from repro.dsp.sar import CircularSAR, angular_peak_ratio


def bench_fig14_multipath_profile(benchmark, report):
    runs = scaled(40)
    grid = np.linspace(-np.pi, np.pi, 1441)

    def experiment():
        rng = np.random.default_rng(14)
        music_ratios = []
        bartlett_ratios = []
        profile_example = None
        sar = CircularSAR(center_m=np.array([0.0, 0.0, 3.8]), n_positions=180)
        for run in range(runs):
            tag = np.array(
                [rng.uniform(8.0, 25.0), rng.uniform(-15.0, -4.0), 1.0]
            )
            scatterer = PointScatterer(
                position_m=np.array(
                    [rng.uniform(-10.0, 10.0), rng.uniform(2.0, 12.0), 1.2]
                ),
                reflectivity=rng.uniform(0.1, 0.35),
            )
            channel = MultipathChannel(
                paths=(GroundBounce(reflection_coefficient=-0.25), scatterer)
            )
            measurement = sar.measure(
                tag, channel, phase_noise_std_rad=0.05, rng=rng
            )
            bartlett = measurement.bartlett_profile(grid)
            music = measurement.music_profile(grid, n_sources=1)
            b_ratio = angular_peak_ratio(bartlett, grid)
            m_ratio = angular_peak_ratio(music, grid)
            if np.isfinite(b_ratio):
                bartlett_ratios.append(b_ratio)
            if np.isfinite(m_ratio):
                music_ratios.append(m_ratio)
            if profile_example is None:
                profile_example = bartlett
        return np.array(music_ratios), np.array(bartlett_ratios), profile_example

    music_ratios, bartlett_ratios, profile = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    report(f"Fig 14 — SAR multipath profile (r = {SAR_RADIUS_M} m arm, {runs} runs)")
    report("")
    report("example Bartlett profile (relative power vs angle):")
    chunks = np.array_split(profile, 72)
    levels = np.array([c.max() for c in chunks])
    for row in range(6, 0, -1):
        threshold = row / 6.0
        report("  " + "".join("#" if level >= threshold else " " for level in levels))
    report("  " + "-" * 72)
    report("  -180 deg" + " " * 55 + "+180 deg")
    report("")
    report(f"LoS-to-second-peak power ratio (MUSIC, as in the paper): "
           f"mean {np.mean(music_ratios):.1f}x, median {np.median(music_ratios):.1f}x "
           f"(paper: 27x)")
    report(f"same ratio from the Bartlett profile: mean {np.mean(bartlett_ratios):.1f}x")
    report("(the Bartlett number is limited by the ring aperture's -8 dB")
    report(" sidelobes, not by multipath — which is why the paper reaches for")
    report(" MUSIC for the quantitative claim)")

    assert np.mean(music_ratios) > 10.0, "LoS must dominate the MUSIC profile"
    assert np.median(music_ratios) > 8.0
    assert np.mean(bartlett_ratios) > 4.0
