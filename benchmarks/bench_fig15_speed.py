"""Fig 15: detected vs actual speed, 10..50 mph.

The paper drives cars past two poles 200 feet apart and compares the
Caraoke speed against the car's own speedometer: within 8 % (1-4 mph)
across the range. We run the full pipeline — AoA at two two-reader
stations, conic intersection, NTP-noised timestamps — per speed.
"""

import numpy as np

from conftest import scaled
from repro.constants import M_S_PER_MPH, SPEED_EXPERIMENT_BASELINE_M
from repro.core import (
    AoAEstimator,
    ReaderGeometry,
    SpeedEstimator,
    SpeedObservation,
    TwoReaderLocalizer,
)
from repro.sim.clock import NtpClock
from repro.sim.mobility import ConstantSpeedTrajectory
from repro.sim.scenario import Scene, make_tags, two_pole_speed_scene


def _one_run(true_mph: float, seed: int) -> float:
    baseline = SPEED_EXPERIMENT_BASELINE_M
    arrays, road = two_pole_speed_scene(baseline_m=baseline)
    v = true_mph * M_S_PER_MPH
    rng = np.random.default_rng(seed)
    trajectory = ConstantSpeedTrajectory(
        start_m=np.array([-25.0, rng.uniform(-2.5, -1.0), 1.0]),
        velocity_m_s=np.array([v, 0.0, 0.0]),
    )
    estimators = [AoAEstimator(a) for a in arrays]
    localizers = [
        TwoReaderLocalizer(ReaderGeometry(arrays[0], road), ReaderGeometry(arrays[1], road)),
        TwoReaderLocalizer(ReaderGeometry(arrays[2], road), ReaderGeometry(arrays[3], road)),
    ]
    clocks = [NtpClock(rng=rng), NtpClock(rng=rng)]
    observations = []
    for station, station_x in enumerate((0.0, baseline)):
        t = trajectory.time_of_closest_approach(np.array([station_x - 8.0, 0.0, 1.0]))
        position = trajectory.position(t)
        tags = make_tags(position[None, :], rng=rng)
        scene = Scene(tags=tags, road=road, arrays=arrays)
        base = 2 * station
        col_a = scene.simulator(base, rng=rng).query(t)
        col_b = scene.simulator(base + 1, rng=rng).query(t)
        aoa_a = estimators[base].estimate_all(col_a)[0]
        aoa_b = estimators[base + 1].estimate_all(col_b)[0]
        fix = localizers[station].locate(
            aoa_a, aoa_b, estimators[base], estimators[base + 1], hint_xy=position[:2]
        )
        observations.append(SpeedObservation(fix, clocks[station].now(t), f"s{station}"))
    return SpeedEstimator().estimate(observations[0], observations[1]).speed_mph


def bench_fig15_speed_detection(benchmark, report):
    runs = scaled(6)
    speeds = (10.0, 20.0, 30.0, 40.0, 50.0)

    def experiment():
        table = {}
        for i, mph in enumerate(speeds):
            measured = [_one_run(mph, seed=1500 + 17 * i + r) for r in range(runs)]
            table[mph] = np.array(measured)
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report(f"Fig 15 — detected vs actual speed ({runs} runs/speed, 200 ft baseline)")
    report(f"{'actual':>7} {'mean':>7} {'p90':>7} {'worst err':>10}")
    worst_overall = 0.0
    for mph in speeds:
        measured = table[mph]
        errors = np.abs(measured - mph) / mph
        worst_overall = max(worst_overall, errors.max())
        report(
            f"{mph:7.0f} {measured.mean():7.1f} {np.percentile(measured, 90):7.1f} "
            f"{errors.max() * 100:9.1f}%"
        )
    report("")
    report(f"worst error overall: {worst_overall * 100:.1f}% (paper: within 8%, 1-4 mph)")

    assert worst_overall < 0.10, f"speed error {worst_overall * 100:.1f}% out of band"
    for mph in speeds:
        assert abs(table[mph].mean() - mph) / mph < 0.06
