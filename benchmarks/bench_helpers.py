"""Shared scene builders for the benchmark suite.

The counting/decoding benches replicate the paper's §12.1 methodology:
tag responses are combined into collisions with comparable amplitudes
(the authors recorded each tag solo with a directional antenna in a
parking lot, then summed subsets). ``lot_simulator`` reproduces that
regime; ``street_simulator`` adds realistic near-far spread for the
ablation study.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.channel.antenna import TriangleArray
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.noise import thermal_noise_power_w
from repro.channel.propagation import LosChannel
from repro.constants import DEFAULT_SAMPLE_RATE_HZ, EXPERIMENT_POLE_HEIGHT_M
from repro.datasets import empirical_carriers_hz
from repro.phy.oscillator import Oscillator
from repro.phy.packet import TransponderPacket
from repro.phy.transponder import Transponder

NOISE_W = thermal_noise_power_w(DEFAULT_SAMPLE_RATE_HZ)

RESULTS_DIR = Path(__file__).parent / "results"


class PhaseTimer:
    """Wall-clock phase accounting for the bench suite.

    The library itself never reads the wall clock (the determinism
    checker enforces it); profiling therefore lives out here. Benches
    wrap their hot sections in ``with timer.phase("count"):`` blocks and
    :func:`write_bench_json` attaches the accumulated breakdown to every
    ``BENCH_*.json`` as a ``timings`` key — per-phase seconds, call
    counts, and share of the instrumented total — then resets, so one
    pytest process writing several bench files never double-reports.

    Wall-clock readings annotate the run; they never feed a gated
    number, so the simulation results stay bit-identical regardless of
    host speed.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        """Accumulate the block's wall time under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._seconds[name] = self._seconds.get(name, 0.0) + dt
            self._counts[name] = self._counts.get(name, 0) + 1

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulated phases into this one.

        Worker shards time their own hot sections; the coordinator
        merges shard timers (in sorted-label order, so repeated merges
        of the same shards are deterministic) before ``take`` writes
        the breakdown.
        """
        for name in sorted(other._seconds):
            self._seconds[name] = self._seconds.get(name, 0.0) + other._seconds[name]
            self._counts[name] = self._counts.get(name, 0) + other._counts[name]

    def take(self) -> dict:
        """The breakdown so far, JSON-friendly; resets the timer."""
        total = sum(self._seconds.values())
        phases = {
            name: {
                "seconds": self._seconds[name],
                "count": self._counts[name],
                "share": self._seconds[name] / total if total else 0.0,
            }
            for name in sorted(self._seconds)
        }
        self._seconds, self._counts = {}, {}
        return {"total_s": total, "phases": phases}


#: The suite-wide timer every bench module shares; write_bench_json
#: drains it into the file it writes.
timer = PhaseTimer()


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist a benchmark's headline numbers machine-readably.

    Writes ``benchmarks/results/BENCH_<name>.json`` so the performance
    trajectory can be tracked across commits (the human-readable ``.txt``
    transcripts are free-form; this is the stable contract). Values must
    be JSON-serializable; numpy scalars are coerced and non-finite
    floats become null (bare ``NaN`` is not valid JSON). Every file
    additionally carries the shared :data:`timer`'s ``timings``
    breakdown (count/refine/decode/mac wall-clock shares) for the
    phases the bench wrapped; the timer resets on write.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload.setdefault("timings", timer.take())

    def coerce(value):
        if isinstance(value, dict):
            return {str(k): coerce(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [coerce(v) for v in value]
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (float, np.floating)):
            return float(value) if math.isfinite(value) else None
        return value

    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(coerce(payload), indent=2, sort_keys=True) + "\n")
    return path


def pole_array() -> TriangleArray:
    return TriangleArray.street_pole(np.array([0.0, 0.0, EXPERIMENT_POLE_HEIGHT_M]))


def tags_from_population(m: int, rng: np.random.Generator, spread: str) -> list[Transponder]:
    """``m`` tags with carriers drawn (without replacement) from the
    synthetic 155-tag population, placed per the requested regime."""
    carriers = rng.choice(empirical_carriers_hz(), size=m, replace=m > 155)
    tags = []
    for carrier in carriers:
        if spread == "lot":
            position = (rng.uniform(-8, 8), rng.uniform(-11, -7), 1.0)
        elif spread == "street":
            position = (rng.uniform(-20, 20), rng.uniform(-12, -4), 1.0)
        else:
            raise ValueError(f"unknown spread {spread!r}")
        tags.append(
            Transponder(
                packet=TransponderPacket.random(rng),
                oscillator=Oscillator(float(carrier)),
                position_m=np.array(position),
                rng=rng,
            )
        )
    return tags


def population_simulator(
    m: int, seed: int, spread: str = "lot"
) -> StaticCollisionSimulator:
    """A collision simulator over ``m`` tags from the 155-tag population."""
    rng = np.random.default_rng(seed)
    tags = tags_from_population(m, rng, spread)
    return StaticCollisionSimulator(
        tags,
        pole_array().positions_m,
        LosChannel(),
        noise_power_w=NOISE_W,
        rng=rng,
    )
