"""Backhaul delivery policy vs billing: the sync-period curve.

One experiment on the 3-corridor main line (the same A -> B -> C mesh
as ``bench_city_mesh``, same seed) with a
:class:`~repro.apps.tolling.TollingService` riding the sighting tap —
run once per backhaul configuration:

* **wired** — the free-uplink anchor. Gated bit-identical to a mesh
  built with no backhaul argument at all: same mesh summary, same
  billing summary, to the byte (the golden-pin contract — PR 9's
  billing latency and air numbers exactly).
* **scheduled** at four sync periods — reports and push intents batch
  at each pole and flush on its staggered schedule. The curve the
  module exists to measure: longer periods push billing latency up
  (charges wait on the next sync) and push-hit rate down (a push that
  arrives after the car has left its predicted pole resolves nothing).
* **mule** — no schedule at all: deltas ride passing cars to the exit
  gateway. The far end of the delivery-delay spectrum.
* **fault determinism** — one scheduled run under a seeded
  :class:`~repro.sim.city.FaultPlan` (outages + drops + delays),
  executed twice: the mesh summary, backhaul counters and billing
  summary must be byte-identical across the two runs.

Gates: billing completeness is 100% after the final convergence flush
for *every* batched configuration (every crossing billed exactly once —
``check_consistent`` on the plane, the service and the account store);
mean billing latency is monotone nondecreasing in sync period with the
wired anchor at the bottom; push-hit rate is monotone nonincreasing
(small tolerance — the curve is a simulation, not a formula); the
faulted run is repeat-seed deterministic.

Wall clock only annotates throughput; every gated number is seeded sim
output. Set ``REPRO_BENCH_SCALE`` < 1 to shorten the runs.
"""

import json
import time

from bench_helpers import timer, write_bench_json
from conftest import bench_scale as _scale
from repro.apps.tolling import TollingService
from repro.sim.city import BackhaulConfig, CityMesh, FaultPlan
from repro.sim.traffic import TrafficLight

MESH_SEED = 2026
N_POLES_PER_EDGE = 3
THROUGH_WEIGHT = 0.8
ARRIVAL_RATE_PER_S = 0.6
DURATION_S = 90.0

#: The gated sync-period sweep (s). Wired anchors the curve at zero
#: effective lag; mule rides cars instead of a schedule.
SYNC_PERIODS_S = (0.5, 1.0, 2.0, 4.0)

#: Curve tolerances: adjacent points may wiggle this much before the
#: monotonicity gates trip (finite crossing counts, not noise — the
#: runs are seeded).
HIT_RATE_TOL = 0.02
LATENCY_TOL_S = 1e-9

FAULT_SEED = 17
FAULT_SYNC_PERIOD_S = 1.0


def build_mesh(backhaul=None) -> CityMesh:
    kwargs = {} if backhaul is None else {"backhaul": backhaul}
    mesh = CityMesh(rng=MESH_SEED, handoff="push", **kwargs)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_node(
        "v", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0, offset_s=3.0)
    )
    mesh.add_edge("A", dst="u", n_poles=N_POLES_PER_EDGE)
    mesh.add_edge("B", src="u", dst="v", n_poles=N_POLES_PER_EDGE)
    mesh.add_edge("C", src="v", n_poles=N_POLES_PER_EDGE)
    mesh.add_traffic(
        [
            (("A", "B", "C"), THROUGH_WEIGHT),
            (("A", "B"), 1.0 - THROUGH_WEIGHT),
        ],
        rate_per_s=ARRIVAL_RATE_PER_S,
        speed_range_m_s=(10.0, 16.0),
    )
    return mesh


def run_config(duration_s: float, backhaul=None) -> dict:
    """One seeded mesh run with a billing tap; returns the curve point."""
    mesh = build_mesh(backhaul)
    service = TollingService(
        policy="as-sighted",
        max_lag_s=10.0 * duration_s,  # cover any sync lag incl. final flush
        keep_events=False,
    )
    mesh.add_sighting_tap(service)
    t0 = time.perf_counter()
    result = mesh.run(duration_s)
    wall_s = time.perf_counter() - t0
    if mesh._plane is not None and mesh._plane.batched:
        mesh._plane.check_consistent()
    service.check_consistent()
    billing = service.finish()
    ledger = result.ledger.summary()
    pushes_sent = ledger["pushes_sent"]
    return {
        "mesh": result.summary(),
        "billing": billing,
        "push_hit_rate": ledger["push_hits"] / pushes_sent if pushes_sent else 0.0,
        "completeness": (
            billing["charged"] / billing["toll_events"]
            if billing["toll_events"]
            else 0.0
        ),
        "wall_s": wall_s,
    }


def _snapshot(point: dict) -> str:
    """The determinism digest: every seeded number, no wall clock."""
    return json.dumps(
        {k: point[k] for k in ("mesh", "billing", "push_hit_rate", "completeness")},
        sort_keys=True,
    )


def bench_backhaul(benchmark, report):
    duration_s = max(DURATION_S * _scale(), 20.0)

    # -- the wired anchor, gated against the bare mesh -----------------
    with timer.phase("wired-anchor"):
        bare = run_config(duration_s)
        wired = benchmark.pedantic(
            lambda: run_config(duration_s, BackhaulConfig(policy="wired")),
            rounds=1,
            iterations=1,
        )

    curve = [{"label": "wired", "sync_period_s": 0.0, **wired}]
    with timer.phase("period-sweep"):
        for period_s in SYNC_PERIODS_S:
            point = run_config(
                duration_s,
                BackhaulConfig(policy="scheduled", sync_period_s=period_s),
            )
            curve.append(
                {"label": f"scheduled-{period_s:g}s", "sync_period_s": period_s,
                 **point}
            )
    with timer.phase("mule"):
        mule = {"label": "mule", "sync_period_s": None,
                **run_config(duration_s, BackhaulConfig(policy="mule"))}

    def fault_cfg():
        return BackhaulConfig(
            policy="scheduled",
            sync_period_s=FAULT_SYNC_PERIOD_S,
            fault_plan=FaultPlan.seeded(
                FAULT_SEED,
                duration_s=duration_s,
                n_outages=3,
                outage_s=4.0,
                drop_p=0.15,
                max_delay_s=1.0,
            ),
        )

    with timer.phase("fault-determinism"):
        faulted = [run_config(duration_s, fault_cfg()) for _ in range(2)]

    for point in curve + [mule]:
        backhaul = point["mesh"].get("backhaul")
        lag = "wired" if backhaul is None else (
            f"mean lag {backhaul['sync_lag_s']['mean']:.2f}s"
        )
        report(
            f"{point['label']}: {point['billing']['toll_events']} events, "
            f"completeness {point['completeness']:.3f}, "
            f"mean billing latency {point['billing']['mean_latency_s']:.3f}s, "
            f"push-hit rate {point['push_hit_rate']:.3f} ({lag})"
        )
    fault_bh = faulted[0]["mesh"]["backhaul"]
    report(
        f"faulted scheduled-{FAULT_SYNC_PERIOD_S:g}s: "
        f"{fault_bh['batches']['retried']} retries, "
        f"{fault_bh['batches']['dropped']} drops, "
        f"{fault_bh['items']['final_flush']} items on the final flush, "
        f"completeness {faulted[0]['completeness']:.3f}"
    )

    write_bench_json(
        "backhaul",
        {
            "duration_s": duration_s,
            "curve": [
                {k: p[k] for k in (
                    "label", "sync_period_s", "completeness", "push_hit_rate",
                )}
                | {
                    "mean_latency_s": p["billing"]["mean_latency_s"],
                    "max_latency_s": p["billing"]["max_latency_s"],
                    "toll_events": p["billing"]["toll_events"],
                    "air_queries_total": p["billing"]["air_queries_total"],
                    "backhaul": p["mesh"].get("backhaul"),
                }
                for p in curve + [mule]
            ],
            "fault": {
                "seed": FAULT_SEED,
                "sync_period_s": FAULT_SYNC_PERIOD_S,
                "backhaul": fault_bh,
                "completeness": faulted[0]["completeness"],
                "deterministic": _snapshot(faulted[0]) == _snapshot(faulted[1]),
            },
            "scale": _scale(),
        },
    )

    # Gates (after the JSON lands, so a trip still leaves the numbers).
    assert _snapshot(bare) == _snapshot(wired), (
        "backhaul='wired' is not bit-identical to the bare mesh — the "
        "pass-through contract broke"
    )
    for point in curve[1:] + [mule, *faulted]:
        assert point["completeness"] == 1.0, (
            f"{point.get('label', 'faulted')}: completeness "
            f"{point['completeness']} after the final flush — crossings "
            "went unbilled"
        )
        assert point["billing"]["pending"] == 0
        assert point["billing"]["unresolved"] == 0
    for a, b in zip(curve, curve[1:]):
        assert b["billing"]["mean_latency_s"] >= (
            a["billing"]["mean_latency_s"] - LATENCY_TOL_S
        ), (
            f"billing latency not monotone in sync period: {a['label']} "
            f"{a['billing']['mean_latency_s']:.4f}s -> {b['label']} "
            f"{b['billing']['mean_latency_s']:.4f}s"
        )
        assert b["push_hit_rate"] <= a["push_hit_rate"] + HIT_RATE_TOL, (
            f"push-hit rate not monotone in sync period: {a['label']} "
            f"{a['push_hit_rate']:.3f} -> {b['label']} "
            f"{b['push_hit_rate']:.3f}"
        )
    assert mule["billing"]["mean_latency_s"] >= (
        curve[0]["billing"]["mean_latency_s"] - LATENCY_TOL_S
    )
    assert _snapshot(faulted[0]) == _snapshot(faulted[1]), (
        "identical FaultPlan + seed produced different runs — the "
        "determinism contract broke"
    )
