"""Billing plane under load: a million accounts, no radio.

Two legs on :class:`repro.apps.tolling.TollingService`, both driven by
the seeded synthetic replay (:func:`repro.apps.tolling.synthetic_reads`
— sighting-stream-shaped records minted directly, so the bench measures
the *billing* plane, not waveform synthesis):

* **Throughput leg** — a million-account replay through the windowed
  dedup and the sharded account store, with ``max_active_per_shard``
  set well below the account population so the settle-coldest-half
  eviction path runs for real. Gates: a sightings-per-second floor
  (``REPRO_BILLING_READS_PER_S_FLOOR`` overrides for slow CI runners),
  bounded peak memory in both stages (the dedup table's high-water mark
  stays a tiny fraction of total toll events; the account store's peak
  active rows never exceed its configured cap), and exact
  eviction-consistency — ``check_consistent()`` proves every cent and
  every charge survived settlement, to the integer.

* **Policy-curve leg** — the same stream through push / directory-pull
  / blind re-decode (pull against a latency-modeled
  :class:`~repro.apps.tolling.DirectoryBackend` in front of a fully
  seeded :class:`~repro.sim.city.IdentityDirectory`). Gates the
  architecture's promise as a curve: push <= pull <= re-decode on both
  charge latency and air time.

Wall-clock readings (the throughput number) annotate and gate *rates*
only; every simulation result is seeded and the JSON is bit-identical
across hosts apart from the ``timings``/rate keys. Set
``REPRO_BENCH_SCALE`` < 1 to shrink both legs.
"""

import os
import time

from bench_helpers import timer, write_bench_json
from conftest import bench_scale as _scale
from repro.apps.tolling import ShardedAccountStore, TollingService, synthetic_reads
from repro.apps.tolling.__main__ import run_policies

REPLAY_SEED = 2026
#: Full-scale populations (REPRO_BENCH_SCALE multiplies both).
N_ACCOUNTS = 1_000_000
N_CROSSINGS = 400_000
#: Dense arrivals keep the simulated span short (~N_CROSSINGS / rate s)
#: without changing per-read work.
RATE_PER_S = 200.0
#: Account-store sizing: 16 x 8192 = 131072 active rows, far below a
#: million accounts — the eviction path must run, and the memory gate
#: bounds the high-water mark to this cap.
N_SHARDS = 16
MAX_ACTIVE_PER_SHARD = 8192
#: Dedup live-table ceiling. Live entries track *concurrent* crossings
#: (~rate x (window + spread) ~ 2k), not total events (~400k); the gate
#: fails if the watermark sweep ever stops pruning.
DEDUP_PEAK_CEILING = 20_000
#: End-to-end floor, reads/s, generator included. Local runs measure
#: far above this; the default absorbs shared-CI noise.
READS_PER_S_FLOOR = float(os.environ.get("REPRO_BILLING_READS_PER_S_FLOOR", 20_000))

#: Policy-curve leg: smaller replay (the curve needs statistics, not
#: scale) — pull's directory is seeded with every account.
CURVE_ACCOUNTS = 20_000
CURVE_CROSSINGS = 40_000
CURVE_SEED = 11


def bench_billing(benchmark, report):
    scale = _scale()
    n_accounts = max(int(N_ACCOUNTS * scale), 10_000)
    n_crossings = max(int(N_CROSSINGS * scale), 10_000)
    curve_accounts = max(int(CURVE_ACCOUNTS * scale), 2_000)
    curve_crossings = max(int(CURVE_CROSSINGS * scale), 4_000)

    # -- throughput leg: million-account replay, eviction for real -----
    def replay():
        return synthetic_reads(
            n_accounts, n_crossings, rate_per_s=RATE_PER_S, rng=REPLAY_SEED
        )

    # Generation-only pass first: the stream synthesis shares the
    # measured window (the service consumes a generator), so its cost is
    # measured separately and subtracted for the ingest-only rate.
    t0 = time.perf_counter()
    with timer.phase("synthesize"):
        n_reads = sum(1 for _ in replay())
    gen_s = time.perf_counter() - t0

    store = ShardedAccountStore(
        n_shards=N_SHARDS, max_active_per_shard=MAX_ACTIVE_PER_SHARD
    )
    service = TollingService(policy="as-sighted", accounts=store, keep_events=False)

    def run():
        t0 = time.perf_counter()
        with timer.phase("ingest"):
            for read in replay():
                service.ingest(read)
            summary = service.finish()
        return summary, time.perf_counter() - t0

    summary, total_s = benchmark.pedantic(run, rounds=1, iterations=1)
    service.check_consistent()
    store.check_consistent()
    reads_per_s = summary["reads"] / total_s
    ingest_s = max(total_s - gen_s, 1e-9)
    active_cap = N_SHARDS * MAX_ACTIVE_PER_SHARD

    report(f"replay: {n_accounts} accounts, {n_crossings} crossings, "
           f"{summary['reads']} reads ({summary['toll_events']} toll events, "
           f"{summary['duplicates_suppressed']} duplicates suppressed)")
    report(f"throughput: {reads_per_s:,.0f} reads/s end to end "
           f"(generator {gen_s:.2f}s + ingest {ingest_s:.2f}s; "
           f"{summary['reads'] / ingest_s:,.0f} reads/s ingest-only)")
    report(f"account store: peak {store.peak_active} active rows "
           f"(cap {active_cap}), {store.evictions} rows settled, "
           f"{summary['total_charged_cents']} cents conserved exactly")
    report(f"dedup table: peak {summary['dedup']['peak_entries']} live entries "
           f"for {summary['toll_events']} events")

    # -- policy-curve leg: push vs pull vs re-decode -------------------
    with timer.phase("policy-curve"):
        curve = run_policies(curve_accounts, curve_crossings, CURVE_SEED)
    latencies = {p: curve[p]["mean_latency_s"] for p in ("push", "pull", "redecode")}
    airs = {p: curve[p]["air_queries_total"] for p in ("push", "pull", "redecode")}
    for policy in ("push", "pull", "redecode"):
        report(f"policy {policy}: mean latency {latencies[policy] * 1e3:.3f} ms, "
               f"{airs[policy]} air queries, {curve[policy]['charged']} charged")

    write_bench_json(
        "billing",
        {
            "throughput": {
                "n_accounts": n_accounts,
                "n_crossings": n_crossings,
                "reads": summary["reads"],
                "toll_events": summary["toll_events"],
                "duplicates_suppressed": summary["duplicates_suppressed"],
                "reads_per_s": reads_per_s,
                "reads_per_s_ingest_only": summary["reads"] / ingest_s,
                "reads_per_s_floor": READS_PER_S_FLOOR,
                "total_charged_cents": summary["total_charged_cents"],
                "dedup_peak_entries": summary["dedup"]["peak_entries"],
                "dedup_peak_ceiling": DEDUP_PEAK_CEILING,
                "accounts": store.summary(),
                "active_row_cap": active_cap,
            },
            "policy_curve": {
                "n_accounts": curve_accounts,
                "n_crossings": curve_crossings,
                "mean_latency_s": latencies,
                "air_queries_total": airs,
                "summaries": curve,
            },
            "scale": scale,
        },
    )

    # Gates (after the JSON lands, so a trip still leaves the numbers).
    assert reads_per_s >= READS_PER_S_FLOOR, (
        f"billing throughput {reads_per_s:,.0f} reads/s under the "
        f"{READS_PER_S_FLOOR:,.0f} floor"
    )
    assert store.peak_active <= active_cap, (
        f"account store peaked at {store.peak_active} active rows, "
        f"cap is {active_cap}"
    )
    if n_accounts > active_cap:
        assert store.evictions > 0, (
            "a million accounts through a 131k-row store never evicted — "
            "the bounded-memory leg measured nothing"
        )
    assert summary["dedup"]["peak_entries"] <= DEDUP_PEAK_CEILING, (
        f"dedup live table peaked at {summary['dedup']['peak_entries']} "
        f"entries (ceiling {DEDUP_PEAK_CEILING}) — watermark sweep stalled?"
    )
    assert summary["pending"] == 0 and summary["unresolved"] == 0
    assert summary["charged"] == summary["toll_events"]
    assert latencies["push"] <= latencies["pull"] <= latencies["redecode"], (
        f"latency curve out of order: {latencies}"
    )
    assert airs["push"] <= airs["pull"] <= airs["redecode"], (
        f"air-time curve out of order: {airs}"
    )
    assert latencies["pull"] > latencies["push"], (
        "pull paid no backend round trip — the latency model is dead"
    )
