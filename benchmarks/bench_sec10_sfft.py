"""§10: the sparse FFT optimization.

The reader's spectrum is k-sparse (a handful of tags in 615+ bins), so
Caraoke computes it with the sFFT to cut compute and power. This bench
validates the sparse pipeline against the full FFT on real collision
signals and compares their running times across signal lengths — the
sFFT's advantage grows with N at fixed sparsity, which is exactly the
hardware's motivation (bigger windows, same handful of tags).
"""

import time

import numpy as np

from bench_helpers import population_simulator
from repro.core.cfo import extract_cfo_peaks
from repro.dsp.sfft import sparse_fft_peaks


def bench_sec10_sfft_vs_fft(benchmark, report):
    simulator = population_simulator(m=5, seed=10)
    collision = simulator.query(0.0)
    wave = collision.antenna(0)
    true_cfos = collision.true_cfos_hz()

    def sparse_pipeline():
        return sparse_fft_peaks(wave.samples, max_tones=5, n_buckets=128, rng=0)

    tones = benchmark(sparse_pipeline)

    fs = wave.sample_rate_hz
    n = wave.n_samples
    sparse_freqs = np.sort([t.freq_hz(fs, n) for t in tones])
    fft_peaks = extract_cfo_peaks(wave, min_snr_db=15)
    fft_freqs = np.sort([p.cfo_hz for p in fft_peaks])

    report("§10 — sparse FFT vs full FFT on a 5-tag collision")
    report(f"true CFOs [kHz]: {[round(c / 1e3, 1) for c in true_cfos]}")
    report(f"sFFT   [kHz]:    {[round(f / 1e3, 1) for f in sparse_freqs]}")
    report(f"FFT    [kHz]:    {[round(f / 1e3, 1) for f in fft_freqs]}")

    matched = sum(
        1 for f in sparse_freqs if np.min(np.abs(true_cfos - f)) < 2000.0
    )
    report(f"sFFT recovered {matched}/5 tags within one bin")
    report("")

    # Timing scaling: pure tones at growing N, fixed sparsity k = 5.
    report("timing vs signal length (k = 5 tones, 30 reps each):")
    report(f"{'N':>8} {'numpy FFT':>12} {'sparse FFT':>12} {'ratio':>7}")
    rng = np.random.default_rng(1)
    for n_len in (4096, 16384, 65536, 262144):
        t_axis = np.arange(n_len)
        x = np.zeros(n_len, dtype=complex)
        for _ in range(5):
            k = rng.uniform(50, n_len // 2)
            x += np.exp(2j * np.pi * k * t_axis / n_len)
        start = time.perf_counter()
        for _ in range(30):
            np.fft.fft(x)
        fft_time = (time.perf_counter() - start) / 30
        start = time.perf_counter()
        for _ in range(30):
            sparse_fft_peaks(x, max_tones=5, n_buckets=128, rng=2)
        sfft_time = (time.perf_counter() - start) / 30
        report(
            f"{n_len:8d} {fft_time * 1e3:10.3f}ms {sfft_time * 1e3:10.3f}ms "
            f"{fft_time / sfft_time:6.2f}x"
        )

    assert matched >= 4, "sFFT must locate the collision spikes"
