"""Fig 12: traffic monitoring at an intersection over two light cycles.

The paper deploys a reader at the A/C intersection: counts accumulate
during red and clear during green; street C carries ~10x street A's
traffic on only ~3x the green time. We run the queue model for two
cycles, pass the *actual tag populations* through the full radio counting
pipeline at a subsampled cadence, and print the Fig 12 time series.
"""

import numpy as np

from repro.core.counting import CollisionCounter
from repro.sim.scenario import intersection_scene
from repro.sim.traffic import IntersectionSimulator, PoissonArrivals, TrafficLight


def bench_fig12_intersection(benchmark, report):
    duration = 132.0
    light_c = TrafficLight(green_s=45.0, yellow_s=3.0, red_s=18.0)
    light_a = TrafficLight(green_s=15.0, yellow_s=3.0, red_s=48.0, offset_s=48.0)
    sim_c = IntersectionSimulator(
        light=light_c,
        arrivals=PoissonArrivals(0.30, rng=np.random.default_rng(1)),
        rng=np.random.default_rng(2),
    )
    sim_a = IntersectionSimulator(
        light=light_a,
        arrivals=PoissonArrivals(0.03, rng=np.random.default_rng(3)),
        rng=np.random.default_rng(4),
    )
    counter = CollisionCounter()
    radio_every = 12.0  # run the full radio pipeline every 12 s of sim time

    def experiment():
        samples_c = sim_c.simulate(duration, sample_period_s=3.0)
        samples_a = sim_a.simulate(duration, sample_period_s=3.0)
        radio_points = []
        for sample in samples_c:
            if sample.t_s % radio_every == 0 and sample.in_range > 0:
                scene = intersection_scene(
                    queue_length=sample.in_range, rng=int(900 + sample.t_s)
                )
                # Ground truth for the radio check: a long queue extends
                # past the reader's ~100 ft radio range (§9 footnote 13);
                # only tags within range can be counted.
                from repro.constants import READER_RANGE_M

                reachable = sum(
                    1
                    for tag in scene.tags
                    if np.linalg.norm(tag.position_m - scene.arrays[0].center_m)
                    <= READER_RANGE_M
                )
                collision = scene.simulator(0, rng=int(901 + sample.t_s)).query(0.0)
                estimate = counter.count(collision.antenna(0))
                radio_points.append((sample.t_s, reachable, estimate.count))
        return samples_c, samples_a, radio_points

    samples_c, samples_a, radio_points = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    report("Fig 12 — cars counted at the intersection over two light cycles")
    report(f"{'t[s]':>5}  {'street C':<32} {'street A':<18}")
    for sc, sa in zip(samples_c, samples_a):
        report(
            f"{sc.t_s:5.0f}  {sc.phase[:1].upper()} {'#' * sc.in_range:<30} "
            f"{sa.phase[:1].upper()} {'#' * sa.in_range}"
        )
    mean_c = np.mean([s.in_range for s in samples_c])
    mean_a = np.mean([s.in_range for s in samples_a])
    report("")
    report(f"mean in range: C = {mean_c:.1f}, A = {mean_a:.2f} "
           f"(ratio {mean_c / max(mean_a, 1e-9):.1f}x; paper: C ~ 10x A)")
    report("")
    report("radio-pipeline verification (tags in radio range vs counted):")
    for t, truth, counted in radio_points:
        report(f"  t = {t:5.1f} s: {truth:2d} tagged cars in range -> counted {counted:2d}")

    # Backlog dynamics: red-phase queues exceed green-phase queues.
    red = [s.queued for s in samples_c if s.phase == "red"]
    green = [s.queued for s in samples_c if s.phase == "green"]
    assert np.mean(red) > np.mean(green)
    # Radio counting tracks the in-range population to within a couple tags.
    for _, truth, counted in radio_points:
        assert abs(counted - truth) <= max(2, 0.25 * truth)
