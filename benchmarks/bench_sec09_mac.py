"""§9: the multi-reader MAC.

Claims reproduced on the event-driven shared medium:

1. query x query collisions are harmless (tags still trigger), so there
   is no contention window;
2. query x response collisions are the harmful case, and the 120 µs
   listen-before-talk rule eliminates them entirely;
3. without carrier sense (ALOHA-style readers) responses get corrupted
   at a rate that grows with reader density.
"""


from conftest import scaled
from repro.sim.medium import Medium, ReaderNode


def bench_sec09_reader_mac(benchmark, report):
    duration = 0.3 * scaled(1, minimum=1)

    def experiment():
        table = {}
        for n_readers in (2, 3, 5):
            for use_csma in (True, False):
                medium = Medium(n_tags=3, rng=10 * n_readers + use_csma)
                for i in range(n_readers):
                    medium.add_reader(
                        ReaderNode(
                            name=f"r{i}",
                            use_csma=use_csma,
                            query_interval_s=1e-3,
                        )
                    )
                table[(n_readers, use_csma)] = medium.run(duration)
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report("§9 — reader MAC on a shared medium (3 tags in range of all readers)")
    report(f"{'readers':>8} {'MAC':>6} {'queries':>8} {'deferred':>9} "
           f"{'responses':>10} {'corrupted':>10} {'rate':>7}")
    for (n_readers, use_csma), stats in sorted(table.items()):
        report(
            f"{n_readers:8d} {'CSMA' if use_csma else 'none':>6} "
            f"{stats['queries_sent']:8d} {stats['queries_deferred']:9d} "
            f"{stats['responses']:10d} {stats['corrupted_responses']:10d} "
            f"{stats['corruption_rate'] * 100:6.2f}%"
        )
    report("")
    report("paper: 120 us of listening guarantees no query lands on a response;")
    report("query-on-query collisions are left alone (still a valid trigger).")

    for n_readers in (2, 3, 5):
        assert table[(n_readers, True)]["corrupted_responses"] == 0
        assert table[(n_readers, False)]["corruption_rate"] > 0.0
    # Corruption worsens with reader density when blind.
    assert (
        table[(5, False)]["corruption_rate"] >= table[(2, False)]["corruption_rate"]
    )
