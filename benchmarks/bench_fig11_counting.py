"""Fig 11: counting accuracy vs number of colliding transponders.

The paper combines solo-recorded responses of its 155 tags into synthetic
collisions of m = 5..50 and reports the §5 estimator's average accuracy:
close to 100 % through m ~ 40, dipping a few percent by 50 (1000 runs per
point; axis 94-102 %).

We reproduce the methodology with the synthetic 155-carrier population
and the full radio pipeline (parking-lot amplitude regime, one 4-query
reader burst per estimate — the hardware's §10 wake-up budget).
"""

import numpy as np

from bench_helpers import population_simulator
from conftest import scaled
from repro.core.counting import CollisionCounter


def bench_fig11_counting_accuracy(benchmark, report):
    runs = scaled(20)
    sizes = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
    counter = CollisionCounter()

    def experiment():
        accuracy = {}
        for m in sizes:
            estimates = []
            for run in range(runs):
                simulator = population_simulator(m=m, seed=1100 + 97 * m + run)
                waves = [simulator.query(i * 1e-3).antenna(0) for i in range(4)]
                estimates.append(counter.count_multi(waves).count)
            estimates = np.asarray(estimates, dtype=float)
            accuracy[m] = float(np.mean(estimates / m) * 100.0)
        return accuracy

    accuracy = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report(f"Fig 11 — counting accuracy vs collision size ({runs} runs/point)")
    report(f"{'m':>4} {'accuracy %':>10}   (paper: ~100% below 40, >=94% at 50)")
    for m in sizes:
        bar = "#" * int(round(max(accuracy[m] - 90, 0)))
        report(f"{m:4d} {accuracy[m]:10.1f}   {bar}")

    mean_error = np.mean([abs(accuracy[m] - 100.0) for m in sizes[:6]])
    report("")
    report(f"mean |error| for m <= 30: {mean_error:.1f}%  (paper: 2% average)")

    for m in (5, 10, 15, 20):
        assert accuracy[m] >= 95.0, f"m={m}: {accuracy[m]:.1f}%"
    for m in (25, 30, 35, 40):
        assert accuracy[m] >= 90.0, f"m={m}: {accuracy[m]:.1f}%"
    assert accuracy[50] >= 80.0
