"""Fig 4: the frequency-domain view of a 5-tag collision.

The paper's figure shows the Fourier transform of five colliding E-ZPass
responses: five clean spikes, one per tag, at the tags' CFOs. This bench
synthesizes the same collision, verifies the spike count and positions,
prints an ASCII rendering of the spectrum, and times the FFT + peak
extraction pipeline (the per-query processing cost on the reader).
"""

import numpy as np

from bench_helpers import population_simulator
from repro.core.cfo import extract_cfo_peaks
from repro.dsp.spectrum import fft_spectrum


def bench_fig04_collision_spectrum(benchmark, report):
    simulator = population_simulator(m=5, seed=4)
    collision = simulator.query(0.0)
    wave = collision.antenna(0)

    def pipeline():
        return extract_cfo_peaks(wave, min_snr_db=15)

    peaks = benchmark(pipeline)

    true_cfos = collision.true_cfos_hz()
    report("Fig 4 — collision of five transponders, frequency domain")
    report(f"true CFOs [kHz]:     {[round(c / 1e3, 1) for c in true_cfos]}")
    report(f"detected peaks [kHz]: {[round(p.cfo_hz / 1e3, 1) for p in peaks]}")

    spectrum = fft_spectrum(wave)
    mags = spectrum.magnitude()[: spectrum.bin_of(1.25e6)]
    bins = np.array_split(mags, 64)
    levels = np.array([chunk.max() for chunk in bins])
    levels = levels / levels.max()
    report("")
    report("power vs CFO (0 .. 1.2 MHz):")
    for row in range(8, 0, -1):
        threshold = row / 8.0
        report("  " + "".join("#" if lvl >= threshold else " " for lvl in levels))
    report("  " + "-" * 64)
    report("  0 kHz" + " " * 50 + "1200 kHz")

    assert len(peaks) == 5, "five tags must produce five spikes"
    for peak in peaks:
        assert np.min(np.abs(true_cfos - peak.cfo_hz)) < 1000.0
