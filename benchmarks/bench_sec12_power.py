"""§12.5: reader power profile and solar budget.

Measured numbers reproduced by the models: 900 mW active, 69 µW sleep,
~9 mW average at one 10 ms measurement burst per second — 56x below the
500 mW panel — and the claim that ~3 hours of sun banks enough energy to
run the reader for most of a week in the dark.
"""

from repro.constants import SOLAR_PEAK_W
from repro.hw.battery import Battery, simulate_energy_budget
from repro.hw.power import DutyCycle, PowerModel
from repro.hw.solar import SolarPanel, clear_day, cloudy_day, night_only


def bench_sec12_power_budget(benchmark, report):
    model = PowerModel()
    duty = DutyCycle(active_s=10e-3, period_s=1.0)

    def experiment():
        average = model.average_power_w(duty)
        margin = model.harvest_margin(duty, SOLAR_PEAK_W)
        simulated = model.simulate_schedule(duty, duration_s=600.0) / 600.0
        harvest_3h = SOLAR_PEAK_W * 3 * 3600
        dark = simulate_energy_budget(
            battery=Battery(capacity_j=harvest_3h, charge_j=harvest_3h),
            panel=SolarPanel(),
            profile=night_only(),
            power=model,
            duty=duty,
            duration_s=8 * 86_400.0,
        )
        cloudy = simulate_energy_budget(
            battery=Battery(capacity_j=10_000.0, charge_j=5_000.0),
            panel=SolarPanel(),
            profile=cloudy_day(0.18),
            power=model,
            duty=duty,
            duration_s=14 * 86_400.0,
        )
        sunny = simulate_energy_budget(
            battery=Battery(capacity_j=10_000.0, charge_j=2_000.0),
            panel=SolarPanel(),
            profile=clear_day(),
            power=model,
            duty=duty,
            duration_s=14 * 86_400.0,
        )
        return average, margin, simulated, dark, cloudy, sunny

    average, margin, simulated, dark, cloudy, sunny = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    report("§12.5 — reader power profile")
    report(f"active power:            900.0 mW (measured, modeled)")
    report(f"sleep power:              69.0 uW (measured, modeled)")
    report(f"average @1 measurement/s: {average * 1e3:6.2f} mW (paper: ~9 mW)")
    report(f"event-driven simulation:  {simulated * 1e3:6.2f} mW (must agree)")
    report(f"solar harvest margin:     {margin:6.1f} x  (paper: ~56 x)")
    report("")
    report(f"3 h of sun, then darkness: ran {dark.uptime_s / 86_400:.1f} days "
           f"(paper: 'run the device for a week')")
    report(f"two cloudy weeks (18% sky): {'survived' if cloudy.survived else 'BROWN-OUT'}, "
           f"min SoC {cloudy.min_state_of_charge * 100:.0f}%")
    report(f"two sunny weeks:            {'survived' if sunny.survived else 'BROWN-OUT'}, "
           f"final SoC {sunny.final_charge_j / 10_000.0 * 100:.0f}%")

    assert abs(average * 1e3 - 9.07) < 0.1
    assert abs(simulated - average) / average < 0.02
    assert 50.0 < margin < 60.0
    assert dark.uptime_s > 6.5 * 86_400.0
    assert cloudy.survived and sunny.survived
