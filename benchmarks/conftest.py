"""Benchmark infrastructure: result reporting and scale knobs.

Every benchmark regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports. Output goes both to the terminal
(through pytest's capture) and to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can quote it.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to scale Monte-Carlo run counts
up or down.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Monte-Carlo scale factor from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 2) -> int:
    """Scale a run count by the environment knob."""
    return max(minimum, int(round(n * bench_scale())))


@pytest.fixture
def report(request, capsys):
    """Print through capture and persist to benchmarks/results/<test>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines: list[str] = []

    def _report(text: str = "") -> None:
        lines.append(str(text))
        with capsys.disabled():
            print(text)

    yield _report

    name = request.node.name.replace("/", "_")
    (RESULTS_DIR / f"{name}.txt").write_text("\n".join(lines) + "\n")
