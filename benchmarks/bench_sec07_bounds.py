"""§7 closed-form error budgets.

Two worked numbers in the paper:

* footnote 11 — worst-case along-road position error for a 13-foot pole
  watching two 12-foot lanes: ~8.5 feet;
* §7 — speed error over a 360-foot (4 light poles) baseline: <= 5.5 % at
  20 mph, <= 6.8 % at 50 mph (position bound + tens-of-ms NTP sync).

The bench evaluates the closed forms across pole heights, lane counts and
baselines, reproducing the worked numbers and the design trends.
"""

import numpy as np

from repro.constants import (
    ANALYSIS_POLE_HEIGHT_M,
    FEET_PER_METER,
    METERS_PER_FOOT,
    M_S_PER_MPH,
    SPEED_BASELINE_M,
)
from repro.core.speed import max_position_error_m, max_speed_error_fraction


def bench_sec07_error_bounds(benchmark, report):
    def experiment():
        position = max_position_error_m(ANALYSIS_POLE_HEIGHT_M, 2)
        speeds = {
            mph: max_speed_error_fraction(
                mph * M_S_PER_MPH, SPEED_BASELINE_M, position, 0.05
            )
            for mph in (20, 50)
        }
        return position, speeds

    position, speeds = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report("§7 — closed-form error budgets")
    report(
        f"position bound (13 ft pole, 2 lanes): {position * FEET_PER_METER:.2f} ft "
        f"(paper: 8.5 ft)"
    )
    report(f"speed bound @20 mph over 360 ft: {speeds[20] * 100:.1f}% (paper: 5.5%)")
    report(f"speed bound @50 mph over 360 ft: {speeds[50] * 100:.1f}% (paper: 6.8%)")
    report("")

    report("position bound vs pole height (2 lanes):")
    for feet in (10, 13, 16, 20):
        err = max_position_error_m(feet * METERS_PER_FOOT, 2) * FEET_PER_METER
        report(f"  {feet:3d} ft pole: {err:5.2f} ft  {'#' * int(round(err * 2))}")

    report("speed bound vs baseline (20 mph, paper position bound):")
    for poles, baseline_ft in ((2, 180), (4, 360), (6, 540)):
        err = max_speed_error_fraction(
            20 * M_S_PER_MPH, baseline_ft * METERS_PER_FOOT, position, 0.05
        )
        report(f"  {poles} poles ({baseline_ft:3d} ft): {err * 100:5.2f}%")

    np.testing.assert_allclose(position * FEET_PER_METER, 8.5, atol=0.35)
    assert speeds[50] > speeds[20], "sync term grows with speed"
    assert 0.03 < speeds[20] < 0.07
    assert 0.03 < speeds[50] < 0.08
