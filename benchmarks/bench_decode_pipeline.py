"""Decode-pipeline throughput: incremental batched combiner vs seed path.

The Fig 16 workload (10-tag collisions, ``max_queries=64``) decoded every
target by re-running ``CoherentDecoder.decode(captures[:n])`` from scratch
at each geometric doubling — quadratic compute for an answer the §12.4
air-time argument gets for free. The :class:`DecodeSession` pipeline now
advances per-target accumulators one capture at a time, shares every
capture across targets, and attempts demodulation only at new capture
counts.

This benchmark replays identical capture streams through both pipelines,
asserts the outputs are identical (bit-identical packets, identical query
counts per target), and requires the batched pipeline to be at least 5x
faster on the 10-tag workload.
"""

import os
import time

from bench_helpers import population_simulator, write_bench_json
from conftest import scaled
from repro.core.cfo import extract_cfo_peaks
from repro.core.decoding import CoherentDecoder, DecodeSession

MAX_QUERIES = 64
N_TAGS = 10
TIMING_REPS = 3
#: Required aggregate speedup. Overridable for slow/loaded hosts where
#: the gate would flake without any code defect.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_DECODE_SPEEDUP_FLOOR", "5.0"))


def seed_decode_all(decoder, capture_pool, cfos, max_queries):
    """The seed pipeline: per-target geometric re-decode of the shared pool.

    This is a faithful inline copy of the pre-refactor
    ``DecodeSession.decode_target`` loop: each doubling re-runs
    ``decode(captures[:n])``, re-deriving every capture's compensation and
    re-attempting every demodulation.
    """
    captures = []

    def ensure(n):
        while len(captures) < n:
            captures.append(capture_pool[len(captures)])

    results = {}
    for cfo in cfos:
        n = 1
        while True:
            ensure(n)
            result = decoder.decode(captures[:n], cfo)
            if result.success or n >= max_queries:
                break
            n = min(2 * n, max_queries)
        results[cfo] = result
    return results, len(captures)


def batched_decode_all(decoder, capture_pool, cfos, max_queries):
    """The refactored pipeline: one DecodeSession over the same stream."""
    pool = iter(capture_pool)
    session = DecodeSession(query_fn=lambda t: None, decoder=decoder)

    def ensure(n):
        while len(session.captures) < n:
            session.captures.append(next(pool))

    session._ensure_captures = ensure
    results = session.decode_all(cfos, max_queries=max_queries)
    return results, len(session.captures)


def bench_decode_pipeline(benchmark, report):
    scenes = scaled(4)

    def run_all():
        rows = []
        for run in range(scenes):
            simulator = population_simulator(m=N_TAGS, seed=2700 + 31 * run)
            decoder = CoherentDecoder(simulator.sample_rate_hz)
            peaks = extract_cfo_peaks(simulator.query(0.0).antenna(0), min_snr_db=15)
            cfos = [p.cfo_hz for p in peaks]
            pool = [
                simulator.query(i * 1e-3).antenna(0) for i in range(MAX_QUERIES)
            ]

            t_seed = t_new = float("inf")
            for _ in range(TIMING_REPS):
                t0 = time.perf_counter()
                seed_results, seed_air = seed_decode_all(
                    decoder, pool, cfos, MAX_QUERIES
                )
                t_seed = min(t_seed, time.perf_counter() - t0)
                t0 = time.perf_counter()
                new_results, new_air = batched_decode_all(
                    decoder, pool, cfos, MAX_QUERIES
                )
                t_new = min(t_new, time.perf_counter() - t0)

            for cfo in cfos:
                assert new_results[cfo].packet == seed_results[cfo].packet, (
                    f"packet mismatch at cfo {cfo}"
                )
                assert new_results[cfo].n_queries == seed_results[cfo].n_queries, (
                    f"query-count mismatch at cfo {cfo}"
                )
            assert new_air == seed_air, "air-time accounting diverged"
            decoded = sum(1 for r in seed_results.values() if r.success)
            rows.append((run, len(cfos), decoded, t_seed, t_new))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        f"Decode pipeline — {N_TAGS}-tag Fig 16 workload, "
        f"max_queries={MAX_QUERIES} ({scenes} scenes, best of {TIMING_REPS})"
    )
    report(
        f"{'scene':>5} {'targets':>8} {'decoded':>8} {'seed [ms]':>10} "
        f"{'batched [ms]':>13} {'speedup':>8}"
    )
    for run, n_targets, decoded, t_seed, t_new in rows:
        report(
            f"{run:5d} {n_targets:8d} {decoded:8d} {t_seed * 1e3:10.1f} "
            f"{t_new * 1e3:13.1f} {t_seed / t_new:7.1f}x"
        )
    total_seed = sum(r[3] for r in rows)
    total_new = sum(r[4] for r in rows)
    speedup = total_seed / total_new
    report("")
    report(
        f"aggregate: seed {total_seed * 1e3:.1f} ms, batched "
        f"{total_new * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    report("outputs verified identical: packets, per-target n_queries, air time")

    write_bench_json(
        "decode_pipeline",
        {
            "workload": {
                "n_tags": N_TAGS,
                "max_queries": MAX_QUERIES,
                "scenes": scenes,
                "timing_reps": TIMING_REPS,
            },
            "seed_ms_total": total_seed * 1e3,
            "batched_ms_total": total_new * 1e3,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >={SPEEDUP_FLOOR}x speedup, measured {speedup:.2f}x"
    )
