"""Decode-pipeline throughput: batched combiner vs seed path, MRC vs single.

Two gates on the Fig 16 workload (10-tag collisions, ``max_queries=64``):

1. **Batched vs seed compute.** The seed decoded every target by
   re-running ``CoherentDecoder.decode(captures[:n])`` from scratch at
   each geometric doubling — quadratic compute for an answer the §12.4
   air-time argument gets for free. The :class:`DecodeSession` pipeline
   advances per-target accumulators one capture at a time, shares every
   capture across targets, and attempts demodulation only at new capture
   counts. Identical capture streams are replayed through both pipelines
   (``combining="single"`` — the seed numerics, bit for bit), outputs
   are asserted identical, and the batched pipeline must be >= 5x faster.

2. **Multi-antenna MRC vs single-antenna air time.** The same collision
   streams are decoded once with ``combining="single"`` (one antenna)
   and once with ``combining="mrc"`` (all three, maximum-ratio per the
   shared Eq 5 readout). Packets must agree; MRC must identify every tag
   in strictly fewer queries — both the slowest tag (the session's air
   time) and the per-tag total.

3. **Overheard donations.** The same workload decoded once more with a
   handful of *donated* captures (another reader's trigger windows over
   this pole's geometry — here: fresh captures of the same scene)
   offered through ``DecodeSession.donate_capture``. Packets must still
   agree, donations must never count toward air time, and the batch
   must finish in strictly fewer own queries in aggregate.
"""

import os
import time

from bench_helpers import population_simulator, timer, write_bench_json
from conftest import scaled
from repro.channel.collision import StaticCollisionSimulator
from repro.channel.propagation import LosChannel
from repro.core.cfo import extract_cfo_peaks
from repro.core.decoding import CoherentDecoder, DecodeSession

MAX_QUERIES = 64
N_TAGS = 10
TIMING_REPS = 3
#: Required aggregate speedup. Overridable for slow/loaded hosts where
#: the gate would flake without any code defect.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_DECODE_SPEEDUP_FLOOR", "5.0"))


def seed_decode_all(decoder, capture_pool, cfos, max_queries):
    """The seed pipeline: per-target geometric re-decode of the shared pool.

    This is a faithful inline copy of the pre-refactor
    ``DecodeSession.decode_target`` loop: each doubling re-runs
    ``decode(captures[:n])``, re-deriving every capture's compensation and
    re-attempting every demodulation.
    """
    captures = []

    def ensure(n):
        while len(captures) < n:
            captures.append(capture_pool[len(captures)])

    results = {}
    for cfo in cfos:
        n = 1
        while True:
            ensure(n)
            result = decoder.decode(captures[:n], cfo)
            if result.success or n >= max_queries:
                break
            n = min(2 * n, max_queries)
        results[cfo] = result
    return results, len(captures)


def batched_decode_all(decoder, capture_pool, cfos, max_queries):
    """The refactored pipeline: one DecodeSession over the same stream.

    ``combining="single"`` reproduces the seed numerics bit-for-bit, so
    the output-equality assertions below stay exact.
    """
    pool = iter(capture_pool)
    session = DecodeSession(
        query_fn=lambda t: None, decoder=decoder, combining="single"
    )

    def ensure(n):
        while len(session.captures) < n:
            session.captures.append(next(pool))

    session._ensure_captures = ensure
    results = session.decode_all(cfos, max_queries=max_queries)
    return results, len(session.captures)


def combining_decode_all(
    decoder, collision_pool, cfos, combining, max_queries, donations=()
):
    """Decode one shared collision stream under a combining policy.

    ``donations`` are offered to the session as overheard captures:
    combined (for targets whose spike they contain) as free evidence,
    never counted as issued queries.
    """
    session = DecodeSession(
        query_fn=lambda t: None, decoder=decoder, combining=combining
    )
    session.captures = list(collision_pool)
    for capture in donations:
        session.donate_capture(capture)
    return session.decode_all(cfos, max_queries=max_queries)


def bench_decode_pipeline(benchmark, report):
    scenes = scaled(4)

    def run_all():
        rows = []
        mrc_rows = []
        donation_rows = []
        for run in range(scenes):
            simulator = population_simulator(m=N_TAGS, seed=2700 + 31 * run)
            decoder = CoherentDecoder(simulator.sample_rate_hz)
            with timer.phase("count"):
                peaks = extract_cfo_peaks(
                    simulator.query(0.0).antenna(0), min_snr_db=15
                )
            cfos = [p.cfo_hz for p in peaks]
            collision_pool = [simulator.query(i * 1e-3) for i in range(MAX_QUERIES)]
            pool = [collision.antenna(0) for collision in collision_pool]
            # Profile the sub-bin refine stage the session runs per
            # target on its first capture. The refined values are
            # discarded: the decode workload below must consume the
            # coarse peaks, bit-identical to the seed pipeline.
            with timer.phase("refine"):
                for cfo in cfos:
                    decoder.refine_cfo(pool[0], cfo)

            t_seed = t_new = float("inf")
            with timer.phase("decode"):
                for _ in range(TIMING_REPS):
                    t0 = time.perf_counter()
                    seed_results, seed_air = seed_decode_all(
                        decoder, pool, cfos, MAX_QUERIES
                    )
                    t_seed = min(t_seed, time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    new_results, new_air = batched_decode_all(
                        decoder, pool, cfos, MAX_QUERIES
                    )
                    t_new = min(t_new, time.perf_counter() - t0)

            for cfo in cfos:
                assert new_results[cfo].packet == seed_results[cfo].packet, (
                    f"packet mismatch at cfo {cfo}"
                )
                assert new_results[cfo].n_queries == seed_results[cfo].n_queries, (
                    f"query-count mismatch at cfo {cfo}"
                )
            assert new_air == seed_air, "air-time accounting diverged"
            decoded = sum(1 for r in seed_results.values() if r.success)
            rows.append((run, len(cfos), decoded, t_seed, t_new))

            # -- MRC vs single over the *same* collisions ----------------
            with timer.phase("decode"):
                variants = {
                    policy: combining_decode_all(
                        decoder, collision_pool, cfos, policy, MAX_QUERIES
                    )
                    for policy in ("single", "mrc")
                }
            for cfo in cfos:
                single, mrc = variants["single"][cfo], variants["mrc"][cfo]
                assert single.success and mrc.success, f"decode failed at {cfo}"
                assert mrc.packet == single.packet, (
                    f"packet content diverged between policies at {cfo}"
                )
            mrc_rows.append(
                (
                    run,
                    max(r.n_queries for r in variants["single"].values()),
                    max(r.n_queries for r in variants["mrc"].values()),
                    sum(r.n_queries for r in variants["single"].values()),
                    sum(r.n_queries for r in variants["mrc"].values()),
                )
            )

            # -- overheard donations over the *same* scene ---------------
            # Same tags, fresh rng = fresh response phases and receiver
            # noise: donated evidence must contain the targets but be
            # *independent* of the own stream (re-using the same rng
            # would duplicate noise, and coherently duplicated noise
            # degrades the accumulator instead of sharpening it).
            donor = StaticCollisionSimulator(
                simulator.tags,
                simulator.antenna_positions_m,
                LosChannel(),
                noise_power_w=simulator.noise_power_w,
                rng=8900 + 31 * run,
            )
            donations = [donor.query(i * 1e-3) for i in range(4)]
            with timer.phase("decode"):
                donated = combining_decode_all(
                    decoder, collision_pool, cfos, "mrc", MAX_QUERIES,
                    donations=donations,
                )
            for cfo in cfos:
                assert donated[cfo].success
                assert donated[cfo].packet == variants["mrc"][cfo].packet, (
                    f"donations changed the decoded packet at {cfo}"
                )
            donation_rows.append(
                (
                    run,
                    sum(r.n_queries for r in variants["mrc"].values()),
                    sum(r.n_queries for r in donated.values()),
                    sum(r.n_overheard for r in donated.values()),
                )
            )
        return rows, mrc_rows, donation_rows

    rows, mrc_rows, donation_rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(
        f"Decode pipeline — {N_TAGS}-tag Fig 16 workload, "
        f"max_queries={MAX_QUERIES} ({scenes} scenes, best of {TIMING_REPS})"
    )
    report(
        f"{'scene':>5} {'targets':>8} {'decoded':>8} {'seed [ms]':>10} "
        f"{'batched [ms]':>13} {'speedup':>8}"
    )
    for run, n_targets, decoded, t_seed, t_new in rows:
        report(
            f"{run:5d} {n_targets:8d} {decoded:8d} {t_seed * 1e3:10.1f} "
            f"{t_new * 1e3:13.1f} {t_seed / t_new:7.1f}x"
        )
    total_seed = sum(r[3] for r in rows)
    total_new = sum(r[4] for r in rows)
    speedup = total_seed / total_new
    report("")
    report(
        f"aggregate: seed {total_seed * 1e3:.1f} ms, batched "
        f"{total_new * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    report("outputs verified identical: packets, per-target n_queries, air time")

    report("")
    report("Multi-antenna MRC vs single-antenna (same collisions, same packets)")
    report(
        f"{'scene':>5} {'single slowest':>15} {'mrc slowest':>12} "
        f"{'single total':>13} {'mrc total':>10}"
    )
    for run, s_max, m_max, s_sum, m_sum in mrc_rows:
        report(f"{run:5d} {s_max:15d} {m_max:12d} {s_sum:13d} {m_sum:10d}")
    single_air = sum(r[1] for r in mrc_rows)
    mrc_air = sum(r[2] for r in mrc_rows)
    single_total = sum(r[3] for r in mrc_rows)
    mrc_total = sum(r[4] for r in mrc_rows)
    query_ratio = single_total / mrc_total
    report(
        f"aggregate queries: single {single_total}, mrc {mrc_total} "
        f"({query_ratio:.2f}x fewer); session air time (slowest tag) "
        f"{single_air} vs {mrc_air}"
    )

    report("")
    report("Overheard donations (4 donated captures, mrc, same packets)")
    report(f"{'scene':>5} {'own queries':>12} {'with donations':>15} {'overheard':>10}")
    for run, base, donated_q, overheard in donation_rows:
        report(f"{run:5d} {base:12d} {donated_q:15d} {overheard:10d}")
    donated_total = sum(r[2] for r in donation_rows)
    donated_overheard = sum(r[3] for r in donation_rows)
    report(
        f"aggregate own queries: {mrc_total} undonated vs {donated_total} "
        f"with donations ({donated_overheard} overheard captures combined, "
        f"zero own air time)"
    )

    write_bench_json(
        "decode_pipeline",
        {
            "workload": {
                "n_tags": N_TAGS,
                "max_queries": MAX_QUERIES,
                "scenes": scenes,
                "timing_reps": TIMING_REPS,
            },
            "seed_ms_total": total_seed * 1e3,
            "batched_ms_total": total_new * 1e3,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "combining": {
                "single": {
                    "antennas": 1,
                    "queries_total": single_total,
                    "queries_slowest_tag": single_air,
                },
                "mrc": {
                    "antennas": 3,
                    "queries_total": mrc_total,
                    "queries_slowest_tag": mrc_air,
                },
                "single_over_mrc_queries": query_ratio,
            },
            "donations": {
                "donated_captures_per_scene": 4,
                "own_queries_undonated": mrc_total,
                "own_queries_with_donations": donated_total,
                "overheard_combined": donated_overheard,
            },
        },
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >={SPEEDUP_FLOOR}x speedup, measured {speedup:.2f}x"
    )
    assert mrc_total < single_total, (
        f"MRC must identify in strictly fewer queries: {mrc_total} vs {single_total}"
    )
    assert mrc_air < single_air, (
        "MRC must finish the slowest tag in strictly fewer queries: "
        f"{mrc_air} vs {single_air}"
    )
    assert donated_total < mrc_total, (
        "donated captures must cut aggregate own decode queries: "
        f"{donated_total} with donations vs {mrc_total} without"
    )
    assert donated_overheard > 0
