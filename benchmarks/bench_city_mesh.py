"""City mesh: predictive push handoff vs pull-at-sighting.

One experiment on :class:`repro.sim.city.CityMesh` — the 3-corridor /
2-intersection main line A -> B -> C (three poles per corridor,
signalized intersections, Poisson traffic with an off-route share after
B) run twice from one seed:

* ``handoff="push"`` — every resolved sighting feeds the city-wide
  :class:`~repro.sim.city.IdentityDirectory`; a pole whose fixes
  complete a §7 cross-pole speed estimate pushes the identity-cache
  entry to the predicted next pole (its downstream neighbor, or across
  the intersection to the successor corridor's first pole) ahead of the
  car.
* ``handoff="pull"`` — today's pull-at-sighting semantics, the
  ablation: within-corridor neighbor pull still works, but a corridor
  boundary always costs a re-decode.

Gates:

1. with push, more than half of all cross-corridor entries (a tag's
   first attributed sighting in a corridor another corridor already
   identified) resolve from a pushed/pulled cache entry instead of a
   re-decode;
2. push strictly lowers the mean decode queries spent on a tag's first
   sighting at the entered corridor's *first* pole versus pull — the
   first-round latency §7's speed machinery buys;
3. both runs keep the street clean: zero corrupted responses under
   CSMA on the shared mesh-wide air log.

Alongside the 3-corridor experiment, the same file carries the
**full-city scale-out curve**: a 100-corridor downtown grid
(:func:`repro.sim.city.downtown_grid`) run through the sharded engine
(:func:`repro.sim.city.run_sharded`) with per-group compute *measured*
(bench-layer wall clock around each shard's ``advance``; the library
itself never reads the clock) and the N-worker makespan *modeled* from
those measurements — this container has one core, so actually forking N
workers measures contention, not scale-out. The model is labeled
honestly in the JSON (``"mode": "modeled-makespan"``): it charges the
coordinator's replay/merge as a serial Amdahl term and assigns shard
times round-robin exactly as the engine does.

Set ``REPRO_BENCH_SCALE`` < 1 to shorten the simulations.
"""

import os
import time

from bench_helpers import timer, write_bench_json
from conftest import bench_scale as _scale
from repro.sim.city import CityMesh, downtown_grid, run_sharded
from repro.sim.city import parallel as _parallel
from repro.sim.traffic import TrafficLight

MESH_SEED = 2026
N_POLES_PER_EDGE = 3
#: Main-line share: the fraction of cars riding A -> B -> C end to end;
#: the rest turn off after B (the mis-push population).
THROUGH_WEIGHT = 0.8
ARRIVAL_RATE_PER_S = 0.6

#: The downtown scale-out city: rows x cols avenues = 100 corridors.
GRID_ROWS, GRID_COLS = 10, 10
GRID_RATE_PER_S = 0.3
#: Worker counts on the modeled-makespan curve, and the gated point:
#: 4 workers must buy at least 2x the single-worker throughput.
SCALEOUT_WORKER_COUNTS = (1, 2, 4, 8, 16)
SCALEOUT_GATE_WORKERS = 4
SCALEOUT_GATE_SPEEDUP = 2.0


def build_mesh(handoff: str) -> CityMesh:
    mesh = CityMesh(rng=MESH_SEED, handoff=handoff)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_node(
        "v", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0, offset_s=3.0)
    )
    mesh.add_edge("A", dst="u", n_poles=N_POLES_PER_EDGE)
    mesh.add_edge("B", src="u", dst="v", n_poles=N_POLES_PER_EDGE)
    mesh.add_edge("C", src="v", n_poles=N_POLES_PER_EDGE)
    mesh.add_traffic(
        [
            (("A", "B", "C"), THROUGH_WEIGHT),
            (("A", "B"), 1.0 - THROUGH_WEIGHT),
        ],
        rate_per_s=ARRIVAL_RATE_PER_S,
        speed_range_m_s=(10.0, 16.0),
    )
    return mesh


def _measured_grid_run(duration_s: float):
    """One in-process sharded run of the downtown grid with per-group
    compute *measured* by wrapping ``_ShardGroup.advance`` in bench-layer
    wall-clock timing (the determinism checker keeps the clock out of
    the library, so shard profiling lives here). Returns the result,
    per-group seconds keyed like ``events_processed``, and the total
    wall seconds of the run (build excluded)."""
    per_group_s: dict[str, float] = {}
    original = _parallel._ShardGroup.advance

    def timed_advance(self, t_s, intents):
        t0 = time.perf_counter()
        try:
            return original(self, t_s, intents)
        finally:
            dt = time.perf_counter() - t0
            per_group_s[self.key] = per_group_s.get(self.key, 0.0) + dt

    mesh = downtown_grid(
        GRID_ROWS, GRID_COLS, rng=MESH_SEED, rate_per_s=GRID_RATE_PER_S
    )
    _parallel._ShardGroup.advance = timed_advance
    t0 = time.perf_counter()
    try:
        result = run_sharded(mesh, duration_s, workers=1, in_process=True)
    finally:
        _parallel._ShardGroup.advance = original
    total_s = time.perf_counter() - t0
    return result, per_group_s, total_s


def _modeled_makespan(
    group_keys: list[str],
    per_group_s: dict[str, float],
    coordinator_s: float,
    workers: int,
) -> float:
    """The engine's own placement, priced with the measured times:
    groups go to workers round-robin (``i % workers``), the coordinator's
    replay/merge stays serial, and the quantum barrier means every
    quantum waits for the slowest worker — for the whole-run model the
    worker loads simply sum."""
    workers = min(workers, len(group_keys))
    loads = [0.0] * workers
    for i, key in enumerate(group_keys):
        loads[i % workers] += per_group_s.get(key, 0.0)
    return coordinator_s + max(loads)


def bench_city_mesh(benchmark, report):
    duration_s = max(20.0, 45.0 * _scale())

    def run_both():
        with timer.phase("mac"):
            return {
                mode: build_mesh(mode).run(duration_s) for mode in ("push", "pull")
            }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    push, pull = results["push"], results["pull"]

    report(
        f"City mesh — 3 corridors x {N_POLES_PER_EDGE} poles, 2 signalized "
        f"intersections, {ARRIVAL_RATE_PER_S:.1f} cars/s Poisson, "
        f"{duration_s:.0f} s, push vs pull handoff"
    )
    report(
        f"{'policy':>6} {'entries':>8} {'resolved':>9} {'redecodes':>10} "
        f"{'rate':>6} {'1st-pole q':>11} {'pushes':>7} {'hits':>5} "
        f"{'misses':>7} {'corrupted':>10}"
    )
    for name, result in (("push", push), ("pull", pull)):
        ledger = result.ledger
        report(
            f"{name:>6} {result.cross_entries:8d} {result.cross_resolved:9d} "
            f"{result.cross_redecodes:10d} "
            f"{100 * result.cross_resolution_rate:5.0f}% "
            f"{result.mean_first_pole_queries:11.2f} "
            f"{ledger.pushes_sent:7d} {ledger.push_hits:5d} "
            f"{len(ledger.push_misses):7d} "
            f"{result.corrupted_responses:10d}"
        )
    report(
        f"predictive push cuts the entered corridor's first-pole cost "
        f"{pull.mean_first_pole_queries:.2f} -> "
        f"{push.mean_first_pole_queries:.2f} decode queries per first "
        f"sighting ({push.cars_transferred} intersection transfers, "
        f"{push.directory['accounts']} directory accounts, "
        f"{push.directory['reports']} sighting reports)"
    )

    # --- full-city scale-out: 100 corridors through the sharded engine ---
    grid_duration_s = max(4.0, 10.0 * _scale())
    with timer.phase("grid"):
        grid, per_group_s, grid_total_s = _measured_grid_run(grid_duration_s)
    group_keys = [g[0] for g in grid.groups]
    shard_s = sum(per_group_s.values())
    coordinator_s = max(0.0, grid_total_s - shard_s)
    curve = []
    for workers in SCALEOUT_WORKER_COUNTS:
        makespan_s = _modeled_makespan(
            group_keys, per_group_s, coordinator_s, workers
        )
        curve.append(
            {
                "workers": workers,
                "makespan_s": makespan_s,
                "queries_per_s": grid.queries_sent / makespan_s,
                "queries_per_s_per_core": grid.queries_sent
                / makespan_s
                / workers,
                "speedup_vs_1": curve[0]["makespan_s"] / makespan_s
                if curve
                else 1.0,
            }
        )

    report(
        f"\nDowntown grid — {GRID_ROWS}x{GRID_COLS} = {len(grid.edges)} "
        f"corridors, {len(grid.groups)} interference-closed groups, "
        f"{grid_duration_s:.0f} s sim, {grid.queries_sent} queries, "
        f"{sum(grid.events_processed.values())} scheduler events"
    )
    report(
        f"measured (1 core, in-process): {grid_total_s:.2f} s wall = "
        f"{shard_s:.2f} s shard compute + {coordinator_s:.2f} s "
        f"coordinator replay/merge; N-worker makespans below are modeled "
        f"from the per-group measurements (round-robin placement, serial "
        f"coordinator)"
    )
    report(
        f"{'workers':>8} {'makespan s':>11} {'queries/s':>10} "
        f"{'q/s/core':>9} {'speedup':>8}"
    )
    for point in curve:
        report(
            f"{point['workers']:8d} {point['makespan_s']:11.2f} "
            f"{point['queries_per_s']:10.0f} "
            f"{point['queries_per_s_per_core']:9.0f} "
            f"{point['speedup_vs_1']:7.2f}x"
        )

    write_bench_json(
        "city_mesh",
        {
            "n_poles_per_edge": N_POLES_PER_EDGE,
            "through_weight": THROUGH_WEIGHT,
            "arrival_rate_per_s": ARRIVAL_RATE_PER_S,
            "push": push.summary(),
            "pull": pull.summary(),
            "grid_scaleout": {
                "rows": GRID_ROWS,
                "cols": GRID_COLS,
                "n_corridors": len(grid.edges),
                "n_groups": len(grid.groups),
                "duration_s": grid_duration_s,
                "rate_per_s": GRID_RATE_PER_S,
                "mode": "modeled-makespan",
                "cpu_cores": os.cpu_count(),
                "note": (
                    "per-group compute measured on one core in-process; "
                    "N-worker makespan modeled as serial coordinator time "
                    "plus the max round-robin worker load — this container "
                    "cannot measure real N-core wall time"
                ),
                "measured": {
                    "total_s": grid_total_s,
                    "shard_s": shard_s,
                    "coordinator_s": coordinator_s,
                    "queries_sent": grid.queries_sent,
                    "events_processed": sum(grid.events_processed.values()),
                    "cars_injected": grid.cars_injected,
                },
                "curve": curve,
            },
        },
    )

    # The mesh must actually exercise the boundary machinery before any
    # rate is meaningful.
    assert push.cross_entries >= 5, "too few cross-corridor entries to gate on"
    assert push.cars_transferred > 0
    # Gate 1: cross-corridor handoff resolution beats 50% under push.
    assert push.cross_resolution_rate > 0.5, (
        "most cross-corridor entries must resolve without a re-decode, got "
        f"{push.cross_resolution_rate:.2f}"
    )
    # Gate 2: push strictly lowers first-pole first-sighting decode cost.
    assert push.first_pole_queries and pull.first_pole_queries
    assert (
        push.mean_first_pole_queries < pull.mean_first_pole_queries
    ), (
        "predictive push must beat pull-at-sighting at the entered "
        f"corridor's first pole: push {push.mean_first_pole_queries:.2f} vs "
        f"pull {pull.mean_first_pole_queries:.2f}"
    )
    # Gate 3: a clean street under CSMA, mesh-wide, both policies.
    assert push.corrupted_responses == 0
    assert pull.corrupted_responses == 0
    # The directory's bounds never tripped mid-run consistency checks.
    assert push.directory["reports"] > 0
    # Gate 4: the sharded engine's modeled scale-out is real — 4 workers
    # buy at least 2x the single-worker throughput on the 100-corridor
    # grid (the partition is ~100 near-equal groups, so anything less
    # would mean the serial coordinator dominates).
    by_workers = {point["workers"]: point for point in curve}
    gate_speedup = by_workers[SCALEOUT_GATE_WORKERS]["speedup_vs_1"]
    assert gate_speedup >= SCALEOUT_GATE_SPEEDUP, (
        f"{SCALEOUT_GATE_WORKERS} workers must model >= "
        f"{SCALEOUT_GATE_SPEEDUP}x throughput vs 1, got {gate_speedup:.2f}x"
    )
    assert grid.corrupted_responses == 0
