"""City mesh: predictive push handoff vs pull-at-sighting.

One experiment on :class:`repro.sim.city.CityMesh` — the 3-corridor /
2-intersection main line A -> B -> C (three poles per corridor,
signalized intersections, Poisson traffic with an off-route share after
B) run twice from one seed:

* ``handoff="push"`` — every resolved sighting feeds the city-wide
  :class:`~repro.sim.city.IdentityDirectory`; a pole whose fixes
  complete a §7 cross-pole speed estimate pushes the identity-cache
  entry to the predicted next pole (its downstream neighbor, or across
  the intersection to the successor corridor's first pole) ahead of the
  car.
* ``handoff="pull"`` — today's pull-at-sighting semantics, the
  ablation: within-corridor neighbor pull still works, but a corridor
  boundary always costs a re-decode.

Gates:

1. with push, more than half of all cross-corridor entries (a tag's
   first attributed sighting in a corridor another corridor already
   identified) resolve from a pushed/pulled cache entry instead of a
   re-decode;
2. push strictly lowers the mean decode queries spent on a tag's first
   sighting at the entered corridor's *first* pole versus pull — the
   first-round latency §7's speed machinery buys;
3. both runs keep the street clean: zero corrupted responses under
   CSMA on the shared mesh-wide air log.

Set ``REPRO_BENCH_SCALE`` < 1 to shorten the simulations.
"""

from bench_helpers import timer, write_bench_json
from conftest import bench_scale as _scale
from repro.sim.city import CityMesh
from repro.sim.traffic import TrafficLight

MESH_SEED = 2026
N_POLES_PER_EDGE = 3
#: Main-line share: the fraction of cars riding A -> B -> C end to end;
#: the rest turn off after B (the mis-push population).
THROUGH_WEIGHT = 0.8
ARRIVAL_RATE_PER_S = 0.6


def build_mesh(handoff: str) -> CityMesh:
    mesh = CityMesh(rng=MESH_SEED, handoff=handoff)
    mesh.add_node("u", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0))
    mesh.add_node(
        "v", light=TrafficLight(green_s=8.0, yellow_s=1.0, red_s=4.0, offset_s=3.0)
    )
    mesh.add_edge("A", dst="u", n_poles=N_POLES_PER_EDGE)
    mesh.add_edge("B", src="u", dst="v", n_poles=N_POLES_PER_EDGE)
    mesh.add_edge("C", src="v", n_poles=N_POLES_PER_EDGE)
    mesh.add_traffic(
        [
            (("A", "B", "C"), THROUGH_WEIGHT),
            (("A", "B"), 1.0 - THROUGH_WEIGHT),
        ],
        rate_per_s=ARRIVAL_RATE_PER_S,
        speed_range_m_s=(10.0, 16.0),
    )
    return mesh


def bench_city_mesh(benchmark, report):
    duration_s = max(20.0, 45.0 * _scale())

    def run_both():
        with timer.phase("mac"):
            return {
                mode: build_mesh(mode).run(duration_s) for mode in ("push", "pull")
            }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    push, pull = results["push"], results["pull"]

    report(
        f"City mesh — 3 corridors x {N_POLES_PER_EDGE} poles, 2 signalized "
        f"intersections, {ARRIVAL_RATE_PER_S:.1f} cars/s Poisson, "
        f"{duration_s:.0f} s, push vs pull handoff"
    )
    report(
        f"{'policy':>6} {'entries':>8} {'resolved':>9} {'redecodes':>10} "
        f"{'rate':>6} {'1st-pole q':>11} {'pushes':>7} {'hits':>5} "
        f"{'misses':>7} {'corrupted':>10}"
    )
    for name, result in (("push", push), ("pull", pull)):
        ledger = result.ledger
        report(
            f"{name:>6} {result.cross_entries:8d} {result.cross_resolved:9d} "
            f"{result.cross_redecodes:10d} "
            f"{100 * result.cross_resolution_rate:5.0f}% "
            f"{result.mean_first_pole_queries:11.2f} "
            f"{ledger.pushes_sent:7d} {ledger.push_hits:5d} "
            f"{len(ledger.push_misses):7d} "
            f"{result.corrupted_responses:10d}"
        )
    report(
        f"predictive push cuts the entered corridor's first-pole cost "
        f"{pull.mean_first_pole_queries:.2f} -> "
        f"{push.mean_first_pole_queries:.2f} decode queries per first "
        f"sighting ({push.cars_transferred} intersection transfers, "
        f"{push.directory['accounts']} directory accounts, "
        f"{push.directory['reports']} sighting reports)"
    )

    write_bench_json(
        "city_mesh",
        {
            "n_poles_per_edge": N_POLES_PER_EDGE,
            "through_weight": THROUGH_WEIGHT,
            "arrival_rate_per_s": ARRIVAL_RATE_PER_S,
            "push": push.summary(),
            "pull": pull.summary(),
        },
    )

    # The mesh must actually exercise the boundary machinery before any
    # rate is meaningful.
    assert push.cross_entries >= 5, "too few cross-corridor entries to gate on"
    assert push.cars_transferred > 0
    # Gate 1: cross-corridor handoff resolution beats 50% under push.
    assert push.cross_resolution_rate > 0.5, (
        "most cross-corridor entries must resolve without a re-decode, got "
        f"{push.cross_resolution_rate:.2f}"
    )
    # Gate 2: push strictly lowers first-pole first-sighting decode cost.
    assert push.first_pole_queries and pull.first_pole_queries
    assert (
        push.mean_first_pole_queries < pull.mean_first_pole_queries
    ), (
        "predictive push must beat pull-at-sighting at the entered "
        f"corridor's first pole: push {push.mean_first_pole_queries:.2f} vs "
        f"pull {pull.mean_first_pole_queries:.2f}"
    )
    # Gate 3: a clean street under CSMA, mesh-wide, both policies.
    assert push.corrupted_responses == 0
    assert pull.corrupted_responses == 0
    # The directory's bounds never tripped mid-run consistency checks.
    assert push.directory["reports"] > 0
